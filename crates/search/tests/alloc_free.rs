//! Zero-allocation guarantees of the steady-state evaluation paths.
//!
//! A counting global allocator wraps `System`; after warming the synthesis
//! scratch once, re-evaluating distinct groups through
//! [`Evaluator::evaluate_uncached`] (structure checks + SoA synthesis +
//! view projection + profitability) must not allocate at all. Memo
//! insertion (the boxed key) is deliberately outside this unit — it is
//! amortized storage, not per-evaluation work.
//!
//! The observability rework adds a second guarantee: with tracing
//! disabled ([`ObsHandle::disabled`], or the `trace` feature off — both
//! land in the same no-op path), the memo *hit* path with its always-on
//! registry counters must also stay allocation-free.

use kfuse_core::batch::{BatchScratch, CandidateBatch};
use kfuse_core::model::{PerfModel, ProposedModel, RooflineModel, SimpleModel};
use kfuse_core::pipeline::prepare;
use kfuse_core::synth::SynthScratch;
use kfuse_gpu::{FpPrecision, GpuSpec};
use kfuse_ir::KernelId;
use kfuse_obs::ObsHandle;
use kfuse_search::Evaluator;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Distinct member-sorted groups spanning singletons up to 32 members
/// (the stack-key bound), deterministic in `n`.
fn group_pool(n: usize) -> Vec<Vec<KernelId>> {
    (0..200u64)
        .map(|i| {
            let len = 1 + (i as usize % 32);
            let start = (i as usize * 7) % n;
            (0..len)
                .map(|j| KernelId(((start + j * 3) % n) as u32))
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect()
        })
        .collect()
}

#[test]
fn miss_path_is_allocation_free_once_warm() {
    // The 60-kernel scaling workload — the same program the miss-path
    // benchmark and `kfuse example synth60` use.
    let p = kfuse_workloads::synth::scaling(60);
    let (_, ctx) = prepare(&p, &GpuSpec::k20x(), FpPrecision::Double);
    let model = ProposedModel::default();
    let ev = Evaluator::new(&ctx, &model);
    let extra: [Box<dyn PerfModel>; 2] = [Box::new(RooflineModel), Box::new(SimpleModel)];

    // Distinct groups built BEFORE the measured region.
    let groups = group_pool(ctx.n_kernels());

    // Warm the scratch to the program's dimensions (first call sizes every
    // slot array and the pivot/touched buffers to their upper bounds).
    let mut scratch = SynthScratch::new();
    for g in &groups {
        std::hint::black_box(ev.evaluate_uncached(g, &mut scratch));
    }

    let before = allocations();
    for _ in 0..3 {
        for g in &groups {
            std::hint::black_box(ev.evaluate_uncached(g, &mut scratch));
        }
    }
    let delta = allocations() - before;
    assert_eq!(
        delta,
        0,
        "steady-state miss-path evaluation must not allocate ({delta} allocations over {} evals)",
        3 * groups.len()
    );

    // The other two models share the same guarantee through project_view.
    for m in &extra {
        let before = allocations();
        for g in &groups {
            if g.len() < 2 {
                continue;
            }
            let view = ctx.synth.synthesize_into(&ctx.info, g, &mut scratch);
            std::hint::black_box(m.project_view(&ctx.info, &view));
        }
        let delta = allocations() - before;
        assert_eq!(delta, 0, "{} project_view must not allocate", m.name());
    }
}

#[test]
fn batched_miss_path_is_allocation_free_once_warm() {
    // The lane-batched analogue of the scalar guarantee above: once the
    // candidate queue, lane scratch, and output vector have sized
    // themselves, re-scoring whole batches through
    // [`Evaluator::evaluate_uncached_batch`] must not allocate — under
    // the 8-lane `batch` feature and the scalar fallback alike.
    let p = kfuse_workloads::synth::scaling(60);
    let (_, ctx) = prepare(&p, &GpuSpec::k20x(), FpPrecision::Double);
    let model = ProposedModel::default();
    let ev = Evaluator::new(&ctx, &model);

    // Distinct candidates built BEFORE the measured region, spanning
    // every ragged final-sweep fill (203 % 8 == 3).
    let groups = group_pool(ctx.n_kernels());
    let mut batch = CandidateBatch::new();
    for g in groups.iter().take(203) {
        batch.push(g);
    }

    let mut scratch = BatchScratch::new();
    let mut times: Vec<f64> = Vec::new();
    std::hint::black_box(ev.evaluate_uncached_batch(&batch, &mut scratch, &mut times));

    let before = allocations();
    let mut stats = kfuse_core::batch::BatchStats::default();
    for _ in 0..3 {
        stats.merge(ev.evaluate_uncached_batch(&batch, &mut scratch, &mut times));
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "steady-state batched miss-path scoring must not allocate \
         ({delta} allocations over {} lanes in {} sweeps)",
        stats.lanes, stats.batches
    );
    // Lanes count only structure-passing candidates; the pool mixes in
    // infeasible groups on purpose, so this is a bound, not an equality.
    assert!(stats.lanes > 0 && stats.lanes <= 3 * batch.len() as u64);
}

#[test]
fn memo_hit_path_with_disabled_obs_is_allocation_free() {
    // The observability layer must cost nothing when disabled: probing a
    // warm memo through an evaluator built with `ObsHandle::disabled()`
    // (stack key + shard lookup + relaxed registry counters, no spans,
    // no timestamps) allocates nothing in steady state.
    let p = kfuse_workloads::synth::scaling(40);
    let (_, ctx) = prepare(&p, &GpuSpec::k20x(), FpPrecision::Double);
    let model = ProposedModel::default();
    let ev = Evaluator::observed(&ctx, &model, ObsHandle::disabled());
    let groups = group_pool(ctx.n_kernels());

    // Warm: every group pays its one miss (scratch sizing + memo insert).
    let mut scratch = SynthScratch::new();
    for g in &groups {
        std::hint::black_box(ev.group_with(g, &mut scratch));
    }

    let probes_before = ev.probes();
    let before = allocations();
    for _ in 0..3 {
        for g in &groups {
            std::hint::black_box(ev.group_with(g, &mut scratch));
        }
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "obs-disabled memo hit path must not allocate ({delta} allocations)"
    );
    // The registry still counted every multi-member probe.
    assert!(ev.probes() > probes_before);
    assert_eq!(
        ev.evaluations(),
        ev.snapshot().get(kfuse_obs::Counter::MemoMisses)
    );
}
