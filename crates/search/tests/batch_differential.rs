//! Differential property tests for lane-batched candidate evaluation
//! (ISSUE 6 satellite): the batched check + synthesis + projection path
//! must be bitwise indistinguishable from the scalar [`SynthScratch`]
//! path on every GPU table, every model, and every ragged fill 1..=8 —
//! and each synthesized lane must agree field-for-field with the
//! verifier's independent [`PlanChecker::derive_spec`].

use kfuse_core::batch::{BatchScratch, CandidateBatch};
use kfuse_core::model::{PerfModel, ProposedModel, RooflineModel, SimpleModel};
use kfuse_core::pipeline::prepare;
use kfuse_core::plan::PlanContext;
use kfuse_core::synth::SynthScratch;
use kfuse_gpu::{FpPrecision, GpuSpec};
use kfuse_ir::KernelId;
use kfuse_search::eval::{BatchProbe, Evaluator};
#[cfg(feature = "batch")]
use kfuse_verify::PlanChecker;
use kfuse_workloads::synth::{generate, SynthConfig};
use proptest::prelude::*;

fn gpus() -> [GpuSpec; 3] {
    [GpuSpec::k20x(), GpuSpec::k40(), GpuSpec::gtx750ti()]
}

fn models() -> [Box<dyn PerfModel>; 3] {
    [
        Box::new(RooflineModel),
        Box::new(SimpleModel),
        Box::new(ProposedModel::default()),
    ]
}

fn context(kernels: usize, seed: u64, gpu: &GpuSpec) -> PlanContext {
    let cfg = SynthConfig {
        kernels,
        seed,
        ..Default::default()
    };
    let p = generate(&cfg);
    let (_, ctx) = prepare(&p, gpu, FpPrecision::Double);
    ctx
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic pseudo-random group of 1..=6 distinct kernels; includes
/// structurally infeasible and unprofitable candidates on purpose — the
/// batched path must reproduce the scalar verdict for those too.
fn random_group(n: usize, salt: u64) -> Vec<KernelId> {
    let len = 1 + (splitmix64(salt) as usize % 6).min(n - 1);
    let mut g: Vec<KernelId> = (0..len as u64)
        .map(|j| KernelId((splitmix64(salt ^ (j * 0x9e37)) % n as u64) as u32))
        .collect();
    g.sort_unstable();
    g.dedup();
    g
}

/// `evaluate_uncached_batch` vs. per-candidate `evaluate_uncached`,
/// compared with `total_cmp` so INF == INF passes and any ULP drift
/// fails.
fn assert_batch_matches_scalar(ev: &Evaluator<'_>, batch: &CandidateBatch, what: &str) {
    let mut bs = BatchScratch::new();
    let mut ss = SynthScratch::new();
    let mut times = Vec::new();
    let stats = ev.evaluate_uncached_batch(batch, &mut bs, &mut times);
    assert_eq!(times.len(), batch.len(), "{what}: one time per candidate");
    assert!(stats.batches >= 1 || batch.is_empty(), "{what}: stats");
    for (i, &batched) in times.iter().enumerate() {
        let scalar = ev.evaluate_uncached(batch.group(i), &mut ss).time_s;
        assert!(
            scalar.total_cmp(&batched).is_eq(),
            "{what}: candidate {i} ({:?}) batched {batched} != scalar {scalar}",
            batch.group(i),
        );
    }
}

#[test]
fn batched_scoring_matches_scalar_on_every_gpu_model_and_fill() {
    for gpu in &gpus() {
        let ctx = context(14, 0xD1FF ^ splitmix64(gpu.name.len() as u64), gpu);
        let n = ctx.n_kernels();
        for (mi, model) in models().iter().enumerate() {
            let ev = Evaluator::new(&ctx, model.as_ref());
            // Every ragged fill 1..=8, plus multi-sweep batches whose
            // final sweep lands on each remainder.
            for fill in 1usize..=8 {
                for base in [0usize, 8, 16] {
                    let mut batch = CandidateBatch::new();
                    for c in 0..base + fill {
                        batch.push(&random_group(
                            n,
                            splitmix64((mi * 1000 + fill * 64 + base + c) as u64),
                        ));
                    }
                    assert_batch_matches_scalar(
                        &ev,
                        &batch,
                        &format!("{} model {mi} fill {fill} base {base}", gpu.name),
                    );
                }
            }
        }
    }
}

#[test]
fn group_batch_matches_sequential_group_probes() {
    // Two independent evaluators over the same context: one probed
    // through the batched memo path, one sequentially. Duplicated
    // candidates within a batch exercise the in-batch dedupe; singletons
    // exercise the baseline bypass. Run twice so the second pass hits a
    // warm memo.
    for gpu in &gpus() {
        let ctx = context(16, 0xBA7C4 ^ splitmix64(gpu.name.len() as u64), gpu);
        let n = ctx.n_kernels();
        let model = ProposedModel::default();
        let batched = Evaluator::new(&ctx, &model);
        let sequential = Evaluator::new(&ctx, &model);
        let mut probe = BatchProbe::new();
        let mut out = Vec::new();
        for round in 0..2u64 {
            probe.clear();
            for c in 0..40u64 {
                // Every third candidate repeats the previous one; every
                // fifth is a singleton.
                let salt = splitmix64(0xF00D ^ (c - (c % 3 == 2) as u64));
                if c % 5 == 4 {
                    probe.push(&[KernelId((salt % n as u64) as u32)]);
                } else {
                    probe.push(&random_group(n, salt));
                }
            }
            batched.group_batch(&mut probe, &mut out);
            assert_eq!(out.len(), probe.len());
            for (i, got) in out.iter().enumerate() {
                let want = sequential.group(probe.group(i)).time_s;
                assert!(
                    want.total_cmp(&got.time_s).is_eq(),
                    "{} round {round} candidate {i}: batched {} != sequential {want}",
                    gpu.name,
                    got.time_s
                );
            }
        }
        // The batched memo holds one entry per distinct multi-member key:
        // both evaluators agree on the miss count even though the batched
        // side saw in-batch duplicates.
        assert_eq!(batched.evaluations(), sequential.evaluations());
    }
}

/// Every lane of `synthesize_batch` must agree field-for-field with the
/// verifier's independently written `derive_spec` — the same oracle the
/// scalar path is pinned against — including ragged fills 1..=8.
#[cfg(feature = "batch")]
#[test]
fn lane_specs_match_verifier_derive_spec() {
    use kfuse_core::batch::synthesize_batch;
    for gpu in &gpus() {
        let ctx = context(12, 0x5EC5 ^ splitmix64(gpu.name.len() as u64), gpu);
        let n = ctx.n_kernels();
        let checker = PlanChecker::new(&ctx.info);
        let mut scratch = BatchScratch::new();
        for fill in 1usize..=8 {
            let mut batch = CandidateBatch::new();
            for c in 0..fill {
                batch.push(&random_group(n, splitmix64((fill * 16 + c) as u64)));
            }
            let cands: Vec<usize> = (0..fill).collect();
            let view = synthesize_batch(&ctx.synth, &ctx.info, &batch, &cands, &mut scratch);
            assert_eq!(view.fill(), fill);
            for l in 0..fill {
                let ours = view.lane_spec(l);
                let oracle = checker.derive_spec(batch.group(l));
                let what = format!("{} fill {fill} lane {l}", gpu.name);
                assert_eq!(ours.members, oracle.members, "members {what}");
                assert_eq!(ours.pivots, oracle.pivots, "pivots {what}");
                assert_eq!(
                    ours.barrier_before, oracle.barrier_before,
                    "barriers {what}"
                );
                assert_eq!(ours.smem_bytes, oracle.smem_bytes, "smem {what}");
                assert_eq!(ours.projected_regs, oracle.projected_regs, "regs {what}");
                assert_eq!(ours.flops, oracle.flops, "flops {what}");
                assert_eq!(ours.halo_bytes, oracle.halo_bytes, "halo {what}");
                assert_eq!(ours.ro_bytes, oracle.ro_bytes, "ro {what}");
                assert_eq!(ours.active_threads, oracle.active_threads, "threads {what}");
                assert_eq!(ours.complex, oracle.complex, "complex {what}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random workloads, random candidate mixes: batched == scalar
    /// bitwise under the proposed model on all three GPU tables.
    #[test]
    fn batched_scoring_matches_scalar_on_random_workloads(
        seed in 0u64..10_000,
        kernels in 4usize..16,
    ) {
        for gpu in &gpus() {
            let ctx = context(kernels, seed, gpu);
            let model = ProposedModel::default();
            let ev = Evaluator::new(&ctx, &model);
            let mut batch = CandidateBatch::new();
            let count = 1 + (splitmix64(seed) % 23) as usize;
            for c in 0..count {
                batch.push(&random_group(
                    ctx.n_kernels(),
                    splitmix64(seed ^ (c as u64 * 0x9e37_79b9)),
                ));
            }
            assert_batch_matches_scalar(&ev, &batch, &format!("{} seed {seed}", gpu.name));
        }
    }
}
