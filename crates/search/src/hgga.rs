//! The Hybrid Grouping Genetic Algorithm (§III-C).
//!
//! Follows Falkenauer's grouping GA: chromosomes are variable-length lists
//! of *groups* (prospective new kernels), and the genetic operators act on
//! whole groups so that crossover transmits meaningful building blocks —
//! a good fusion discovered in one individual survives intact in its
//! offspring. The paper's adaptation adds multi-dependency awareness: every
//! individual is repaired to satisfy the full constraint system (path
//! closure 1.3, kinship 1.5, capacity 1.6/1.7, profitability 1.1, and
//! condensation acyclicity) before it enters the population, so infeasible
//! solutions never "pollute the search population".
//!
//! The inner loop runs on the flat [`Chromosome`] representation
//! ([`crate::chromo`]): one contiguous member arena, per-group cached
//! [`GroupEval`]s and an incrementally maintained condensation-edge cache.
//! Operators apply their edits in place, carry the evaluations of the
//! groups they probed, and [`Chromosome::finalize`] repairs + rescores only
//! what changed — no per-offspring `Vec<Vec<KernelId>>` clones, no
//! from-scratch plan sums. The trajectory is pinned bit for bit against
//! the pre-rework operators kept in [`crate::reference`]: every RNG draw,
//! probe decision and transient group order below deliberately mirrors
//! that module.
//!
//! [`FusionPlan`] stays the boundary type: solver output, verifier input
//! and island migration all convert at the edges via
//! [`Chromosome::to_plan`].
//!
//! With [`HggaConfig::islands`] > 1 the solver switches to an
//! **island model**: the population is split into that many independent
//! sub-populations, each evolved concurrently with its own RNG stream
//! (derived deterministically from [`HggaConfig::seed`]), and every
//! [`HggaConfig::migration_interval`] generations each island sends clones
//! of its [`HggaConfig::migration_size`] best individuals to its successor
//! on a ring, replacing the receiver's worst. Islands share the sharded
//! evaluation memo, so a group scored on one island is a cache hit on all
//! others. The run remains deterministic for any island count; with
//! `islands == 1` the solver reproduces the reference trajectory bit for
//! bit.

use crate::chromo::{Chromosome, OpScratch};
use crate::eval::{Evaluator, GroupEval};
use kfuse_core::model::PerfModel;
use kfuse_core::pipeline::{IslandStats, SolveOutcome, SolveStats, Solver};
use kfuse_core::plan::{FusionPlan, PlanContext};
use kfuse_ir::KernelId;
use kfuse_obs::{Counter, Gauge, ObsHandle, SpanId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// HGGA hyper-parameters. Defaults follow Table VI (population 100) with
/// the stall-based stop criterion described in §VI-C1.
#[derive(Debug, Clone)]
pub struct HggaConfig {
    /// Population size `M`.
    pub population: usize,
    /// Hard cap on generations.
    pub max_generations: u32,
    /// Stop after this many generations without improvement.
    pub stall_generations: u32,
    /// Tournament size for selection.
    pub tournament: usize,
    /// Probability of crossover (else the fitter parent is cloned).
    pub crossover_rate: f64,
    /// Probability of mutating each offspring.
    pub mutation_rate: f64,
    /// Elites copied unchanged into the next generation.
    pub elitism: usize,
    /// Probability of applying the hill-climbing local-improvement step to
    /// an offspring (the "hybrid" of Falkenauer's HGGA).
    pub local_search_rate: f64,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Number of islands evolved concurrently. `1` (the default) runs the
    /// original single-population algorithm bit for bit; larger values
    /// split [`HggaConfig::population`] across that many sub-populations.
    pub islands: usize,
    /// Generations between ring migrations (island mode only).
    pub migration_interval: u32,
    /// Individuals each island sends to its ring successor per migration.
    pub migration_size: usize,
}

impl Default for HggaConfig {
    fn default() -> Self {
        HggaConfig {
            population: 100,
            max_generations: 2000,
            stall_generations: 60,
            tournament: 3,
            crossover_rate: 0.85,
            mutation_rate: 0.35,
            elitism: 2,
            local_search_rate: 0.3,
            seed: 0xC0FFEE,
            islands: 1,
            migration_interval: 10,
            migration_size: 2,
        }
    }
}

/// External controls a caller can thread into a solve without changing
/// the solver's configuration: warm-start seeds, a wall-clock deadline
/// (the `--budget-ms` anytime mode), and the set of region fingerprints
/// the plan cache knows about (hierarchical greedy-floor reuse).
///
/// The default value is the **cold** state, and every consumer gates on
/// it: with no seeds, no deadline and no cached fingerprints the solve
/// performs zero extra RNG draws, probes or clock reads, so cold-path
/// trajectories stay bit-for-bit identical to a solver without controls.
#[derive(Debug, Clone, Default)]
pub struct SolveControls {
    /// Plans injected into the initial population (each replaces the
    /// current worst individual after construction). Infeasible groups in
    /// a seed are repaired by the normal `finalize` path, so remapped
    /// near-match plans are safe to inject as-is.
    pub seeds: Vec<FusionPlan>,
    /// Hard wall-clock deadline: generation/epoch loops return best-so-far
    /// at the first boundary past it.
    pub deadline: Option<Instant>,
    /// Region fingerprints (see `kfuse_core::fingerprint`) with a cached
    /// plan. The hierarchical solver skips the per-region greedy floor for
    /// seeded regions whose fingerprint is in this set.
    pub cached_region_fps: std::collections::HashSet<u64>,
}

impl SolveControls {
    /// True when the controls are the do-nothing cold state.
    pub fn is_cold(&self) -> bool {
        self.seeds.is_empty() && self.deadline.is_none() && self.cached_region_fps.is_empty()
    }

    /// True once the deadline (if any) has passed.
    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// The HGGA solver.
#[derive(Debug, Clone, Default)]
pub struct HggaSolver {
    /// Hyper-parameters.
    pub config: HggaConfig,
}

impl HggaSolver {
    /// Solver with a specific seed (used to run the paper's 10 repeats).
    pub fn with_seed(seed: u64) -> Self {
        HggaSolver {
            config: HggaConfig {
                seed,
                ..HggaConfig::default()
            },
        }
    }
}

/// A finalized chromosome; its cost is the cached incremental objective.
#[derive(Clone)]
struct Individual {
    chromo: Chromosome,
}

impl Individual {
    fn cost(&self) -> f64 {
        self.chromo.cost()
    }
}

/// Debug-build cross-check: every chromosome accepted as a new global best
/// is re-validated by the independent `kfuse-verify` constraint checker,
/// so an evaluator bug cannot silently promote an infeasible plan.
/// Compiles to nothing in release builds — search speed is unaffected.
#[cfg(debug_assertions)]
fn debug_verify_best(ctx: &PlanContext, model: &dyn PerfModel, plan: &FusionPlan, cost: f64) {
    // An infinite cost marks a legitimately infeasible placeholder (e.g.
    // an identity plan whose singleton kernels already overflow SMEM);
    // those are never *accepted*, only carried until something better wins.
    if !cost.is_finite() {
        return;
    }
    let report = kfuse_verify::check_plan(&ctx.info, plan, Some(model));
    assert!(
        report.is_clean(),
        "HGGA accepted a plan the independent verifier rejects (cost {cost}):\n{}",
        report.render_human()
    );
}

#[cfg(not(debug_assertions))]
#[inline(always)]
fn debug_verify_best(_: &PlanContext, _: &dyn PerfModel, _: &FusionPlan, _: f64) {}

/// Debug-build cross-check on the *final* accepted plan: apply it to the
/// relaxed program, lower the fused result to the structured GPU module
/// IR, and run the `kfuse-verify` analysis passes (barrier-interval
/// races, barrier divergence, symbolic bounds). Sits alongside
/// [`debug_verify_best`] but runs once per solve — codegen plus module
/// analysis is far heavier than a constraint re-check, so doing it on
/// every improvement would dominate debug-mode test time. Skipped when
/// the context was hand-built without its source program.
#[cfg(debug_assertions)]
fn debug_analyze_best(ctx: &PlanContext, plan: &FusionPlan, cost: f64) {
    if !cost.is_finite() {
        return;
    }
    let Some(program) = &ctx.program else {
        return;
    };
    let Ok(specs) = ctx.validate(plan) else {
        // An invalid best is caught loudly by debug_verify_best.
        return;
    };
    let fused = match kfuse_core::fuse::apply_plan(program, &ctx.info, &ctx.exec, plan, &specs) {
        Ok(p) => p,
        Err(_) => return,
    };
    let module = kfuse_codegen::build_module(&fused, &kfuse_codegen::CodegenOptions::default());
    let report = kfuse_verify::analyze_module(&module);
    assert!(
        report.is_clean(),
        "HGGA accepted a plan whose generated module fails static analysis (cost {cost}):\n{}",
        report.render_human()
    );
}

#[cfg(not(debug_assertions))]
#[inline(always)]
fn debug_analyze_best(_: &PlanContext, _: &FusionPlan, _: f64) {}

/// Debug-build cross-check of the delta objective: a sealed offspring's
/// incrementally maintained cost must equal a from-scratch
/// [`Evaluator::plan`] on the converted plan, bit for bit.
#[cfg(debug_assertions)]
fn debug_check_sealed(ev: &Evaluator<'_>, ch: &Chromosome) {
    let full = ev.plan(&ch.to_plan());
    assert!(
        full.total_cmp(&ch.cost()).is_eq(),
        "delta cost {} diverged from full evaluation {full}",
        ch.cost()
    );
}

#[cfg(not(debug_assertions))]
#[inline(always)]
fn debug_check_sealed(_: &Evaluator<'_>, _: &Chromosome) {}

impl Solver for HggaSolver {
    fn name(&self) -> &str {
        "hgga"
    }

    fn solve(&self, ctx: &PlanContext, model: &dyn PerfModel) -> SolveOutcome {
        self.solve_observed(ctx, model, ObsHandle::disabled())
    }

    fn solve_observed(
        &self,
        ctx: &PlanContext,
        model: &dyn PerfModel,
        obs: ObsHandle<'_>,
    ) -> SolveOutcome {
        self.solve_controlled(ctx, model, obs, &SolveControls::default())
    }
}

impl HggaSolver {
    /// [`Solver::solve_observed`] with external [`SolveControls`]
    /// (warm-start seeds and/or a deadline). Default controls reproduce
    /// the uncontrolled solve bit for bit.
    pub fn solve_controlled(
        &self,
        ctx: &PlanContext,
        model: &dyn PerfModel,
        obs: ObsHandle<'_>,
        controls: &SolveControls,
    ) -> SolveOutcome {
        if self.config.islands <= 1 {
            self.solve_single(ctx, model, obs, controls)
        } else {
            self.solve_islands(ctx, model, obs, controls)
        }
    }

    /// The single-population algorithm (`islands <= 1`).
    fn solve_single(
        &self,
        ctx: &PlanContext,
        model: &dyn PerfModel,
        obs: ObsHandle<'_>,
        controls: &SolveControls,
    ) -> SolveOutcome {
        let cfg = &self.config;
        let ev = Evaluator::observed(ctx, model, obs);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut scratch = OpScratch::new();
        let start = Instant::now();
        let mut solve_span = obs.span(SpanId::Solve);
        solve_span.set_arg(0, ctx.n_kernels() as u64);
        solve_span.set_arg(1, 1);

        // Initial population: randomized constructive merges.
        let mut pop: Vec<Individual> = {
            let mut init_span = obs.span(SpanId::InitialPopulation);
            init_span.set_arg(0, cfg.population as u64);
            (0..cfg.population)
                .map(|_| Individual {
                    chromo: random_chromosome(&ev, &mut rng, &mut scratch),
                })
                .collect()
        };
        pop.sort_by(|a, b| a.cost().total_cmp(&b.cost()));
        if !controls.seeds.is_empty() {
            inject_seeds(&ev, &mut pop, &controls.seeds, &mut scratch);
        }

        let mut best = pop[0].chromo.to_plan();
        let mut best_cost = pop[0].cost();
        obs.value(Gauge::BestObjective, best_cost);
        let mut best_gen = 0u32;
        let mut time_to_best = start.elapsed();
        let mut stall = 0u32;
        let mut generations = 0u32;

        for gen in 1..=cfg.max_generations {
            if controls.expired() {
                break;
            }
            generations = gen;
            {
                let mut gen_span = obs.span(SpanId::Generation);
                gen_span.set_arg(0, gen as u64);
                step_generation(
                    &ev,
                    cfg,
                    cfg.population,
                    &mut pop,
                    &mut rng,
                    &mut scratch,
                    controls.deadline,
                );
            }
            ev.count(Counter::Generations, 1);
            obs.value(Gauge::GenerationBest, pop[0].cost());

            if pop[0].cost() < best_cost - 1e-15 {
                best_cost = pop[0].cost();
                best = pop[0].chromo.to_plan();
                debug_verify_best(ctx, model, &best, best_cost);
                ev.count(Counter::BestImprovements, 1);
                obs.value(Gauge::BestObjective, best_cost);
                best_gen = gen;
                time_to_best = start.elapsed();
                stall = 0;
            } else {
                stall += 1;
                if stall >= cfg.stall_generations {
                    break;
                }
            }
        }

        debug_analyze_best(ctx, &best, best_cost);
        ev.metrics().set_gauge(Gauge::BestObjective, best_cost);
        ev.metrics().set_gauge(Gauge::CacheHitRate, ev.hit_rate());
        ev.metrics().set_gauge(Gauge::MissRate, ev.miss_rate());
        let metrics = ev.snapshot();
        let stats = SolveStats {
            elapsed: start.elapsed(),
            time_to_best,
            best_generation: best_gen,
            generations,
            ..SolveStats::from_metrics(&metrics)
        };
        SolveOutcome {
            plan: best,
            objective: best_cost,
            stats,
            metrics,
        }
    }

    /// Island-model evolution (`islands >= 2`): concurrent sub-populations
    /// with deterministic per-island RNG streams and ring migration.
    fn solve_islands(
        &self,
        ctx: &PlanContext,
        model: &dyn PerfModel,
        obs: ObsHandle<'_>,
        controls: &SolveControls,
    ) -> SolveOutcome {
        let cfg = &self.config;
        let n_islands = cfg.islands;
        let ev = Evaluator::observed(ctx, model, obs);
        let start = Instant::now();
        let mut solve_span = obs.span(SpanId::Solve);
        solve_span.set_arg(0, ctx.n_kernels() as u64);
        solve_span.set_arg(1, n_islands as u64);
        // Split the population budget; keep every island large enough for
        // elitism plus actual selection pressure.
        let pop_target = (cfg.population / n_islands).max(cfg.elitism + 2).max(4);
        let interval = cfg.migration_interval.max(1);
        let emigrants = cfg.migration_size.min(pop_target - 1);

        let mut islands: Vec<Island> = (0..n_islands)
            .map(|i| Island {
                rng: SmallRng::seed_from_u64(island_seed(cfg.seed, i)),
                scratch: OpScratch::new(),
                pop: Vec::new(),
                best: FusionPlan::identity(ctx.n_kernels()),
                best_cost: f64::INFINITY,
                best_gen: 0,
                generations: 0,
                migrations_received: 0,
                track: i as u32 + 1,
            })
            .collect();

        // Initial populations, built concurrently. Each island breeds and
        // scores its own individuals — the islands themselves are the unit
        // of parallelism — while sharing the sharded memo.
        {
            let ev = &ev;
            let mut init_span = obs.span(SpanId::InitialPopulation);
            init_span.set_arg(0, (pop_target * n_islands) as u64);
            rayon::scope(|s| {
                for isl in islands.iter_mut() {
                    s.spawn(move || {
                        isl.pop = (0..pop_target)
                            .map(|_| Individual {
                                chromo: random_chromosome(ev, &mut isl.rng, &mut isl.scratch),
                            })
                            .collect();
                        isl.pop.sort_by(|a, b| a.cost().total_cmp(&b.cost()));
                        isl.best = isl.pop[0].chromo.to_plan();
                        isl.best_cost = isl.pop[0].cost();
                    });
                }
            });
        }

        // Warm-start seeds join island 0 (the ring spreads them onward).
        if !controls.seeds.is_empty() {
            let isl = &mut islands[0];
            inject_seeds(&ev, &mut isl.pop, &controls.seeds, &mut isl.scratch);
            isl.best = isl.pop[0].chromo.to_plan();
            isl.best_cost = isl.pop[0].cost();
        }

        let mut global_plan = islands[0].best.clone();
        let mut global_cost = islands[0].best_cost;
        let mut global_gen = 0u32;
        let mut time_to_best = start.elapsed();
        for isl in &islands[1..] {
            if isl.best_cost < global_cost - 1e-15 {
                global_cost = isl.best_cost;
                global_plan = isl.best.clone();
            }
        }

        let mut stall = 0u32;
        let mut gens_done = 0u32;
        while gens_done < cfg.max_generations {
            if controls.expired() {
                break;
            }
            let epoch = interval.min(cfg.max_generations - gens_done);
            {
                let ev = &ev;
                let deadline = controls.deadline;
                let mut epoch_span = obs.span(SpanId::Epoch);
                epoch_span.set_arg(0, gens_done as u64);
                epoch_span.set_arg(1, n_islands as u64);
                rayon::scope(|s| {
                    for isl in islands.iter_mut() {
                        s.spawn(move || evolve_island(ev, cfg, pop_target, isl, epoch, deadline));
                    }
                });
            }
            gens_done += epoch;

            // Fold island bests into the global best (island order fixed,
            // strict improvement only — deterministic tie-breaking).
            let mut improved = false;
            for isl in &islands {
                if isl.best_cost < global_cost - 1e-15 {
                    global_cost = isl.best_cost;
                    global_plan = isl.best.clone();
                    global_gen = isl.best_gen;
                    time_to_best = start.elapsed();
                    improved = true;
                }
            }
            if improved {
                debug_verify_best(ctx, model, &global_plan, global_cost);
                ev.count(Counter::BestImprovements, 1);
                obs.value(Gauge::BestObjective, global_cost);
            }
            if improved {
                stall = 0;
            } else {
                stall += epoch;
                if stall >= cfg.stall_generations {
                    break;
                }
            }

            // Ring migration: emigrant sets are drawn from pre-migration
            // populations so the island order cannot leak into the result.
            if emigrants > 0 && gens_done < cfg.max_generations {
                let mut mig_span = obs.span(SpanId::Migration);
                mig_span.set_arg(0, emigrants as u64);
                mig_span.set_arg(1, n_islands as u64);
                ev.count(Counter::Migrations, 1);
                let packets: Vec<Vec<Individual>> = islands
                    .iter()
                    .map(|isl| isl.pop.iter().take(emigrants).cloned().collect())
                    .collect();
                for (i, packet) in packets.into_iter().enumerate() {
                    let isl = &mut islands[(i + 1) % n_islands];
                    for migrant in packet {
                        // Replace the current worst, keeping pop sorted.
                        *isl.pop.last_mut().expect("island pop is non-empty") = migrant;
                        isl.pop.sort_by(|a, b| a.cost().total_cmp(&b.cost()));
                        isl.migrations_received += 1;
                        ev.count(Counter::MigrantsReceived, 1);
                    }
                }
            }
        }

        let island_stats: Vec<IslandStats> = islands
            .iter()
            .map(|isl| IslandStats {
                generations: isl.generations,
                best_generation: isl.best_gen,
                migrations_received: isl.migrations_received,
            })
            .collect();
        debug_analyze_best(ctx, &global_plan, global_cost);
        ev.metrics().set_gauge(Gauge::BestObjective, global_cost);
        ev.metrics().set_gauge(Gauge::CacheHitRate, ev.hit_rate());
        ev.metrics().set_gauge(Gauge::MissRate, ev.miss_rate());
        let metrics = ev.snapshot();
        let stats = SolveStats {
            // Legacy semantics: the Table VI column is the max over
            // islands; the registry's `generations` counter is the sum.
            generations: islands.iter().map(|i| i.generations).max().unwrap_or(0),
            elapsed: start.elapsed(),
            time_to_best,
            best_generation: global_gen,
            islands: island_stats,
            ..SolveStats::from_metrics(&metrics)
        };
        SolveOutcome {
            plan: global_plan,
            objective: global_cost,
            stats,
            metrics,
        }
    }
}

/// One island's evolving state.
struct Island {
    rng: SmallRng,
    scratch: OpScratch,
    pop: Vec<Individual>,
    best: FusionPlan,
    best_cost: f64,
    best_gen: u32,
    generations: u32,
    migrations_received: u32,
    /// Trace track this island records on (`island index + 1`; 0 is the
    /// coordinator).
    track: u32,
}

/// Derive island `i`'s RNG seed from the run seed (splitmix64-style mix,
/// so island streams are decorrelated but fully determined by the seed).
fn island_seed(seed: u64, island: usize) -> u64 {
    let mut z = seed ^ (island as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seed the population with externally supplied plans (warm start): each
/// seed is rebuilt as a chromosome, repaired + scored by the normal
/// `finalize` path, and replaces the current worst individual. Draws no
/// RNG, so injecting seeds perturbs nothing but population content.
fn inject_seeds(
    ev: &Evaluator<'_>,
    pop: &mut [Individual],
    seeds: &[FusionPlan],
    scratch: &mut OpScratch,
) {
    for plan in seeds {
        let mut chromo = Chromosome::from_plan(plan, ev);
        chromo.finalize(ev, scratch);
        if let Some(worst) = pop.last_mut() {
            *worst = Individual { chromo };
            pop.sort_by(|a, b| a.cost().total_cmp(&b.cost()));
        }
    }
}

/// Run `gens` generations of one island. Same generation step as the
/// single-population solver — the breeding/scoring path exists once.
fn evolve_island(
    ev: &Evaluator<'_>,
    cfg: &HggaConfig,
    pop_target: usize,
    isl: &mut Island,
    gens: u32,
    deadline: Option<Instant>,
) {
    let obs = ev.obs();
    for _ in 0..gens {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        isl.generations += 1;
        {
            let mut gen_span = obs.span_on(SpanId::Generation, isl.track);
            gen_span.set_arg(0, isl.generations as u64);
            gen_span.set_arg(1, (isl.track - 1) as u64);
            step_generation(
                ev,
                cfg,
                pop_target,
                &mut isl.pop,
                &mut isl.rng,
                &mut isl.scratch,
                deadline,
            );
        }
        ev.count(Counter::Generations, 1);
        obs.value_on(Gauge::GenerationBest, isl.track, isl.pop[0].cost());
        if isl.pop[0].cost() < isl.best_cost - 1e-15 {
            isl.best_cost = isl.pop[0].cost();
            isl.best = isl.pop[0].chromo.to_plan();
            isl.best_gen = isl.generations;
        }
    }
}

/// Breed one generation: elites survive, the rest come from tournament
/// selection → crossover → mutation → local search. Offspring arrive
/// already sealed (finalized + scored incrementally), so this single
/// helper replaces the old separate parallel/serial `evaluate` paths.
///
/// With a `deadline`, breeding stops between offspring once the clock
/// runs out (a truncated generation still sorts and replaces, so the best
/// individual bred so far survives into the returned population). Without
/// one — the cold path — the clock is never read and the RNG stream is
/// untouched by the check.
fn step_generation(
    ev: &Evaluator<'_>,
    cfg: &HggaConfig,
    pop_target: usize,
    pop: &mut Vec<Individual>,
    rng: &mut SmallRng,
    scratch: &mut OpScratch,
    deadline: Option<Instant>,
) {
    let mut offspring: Vec<Individual> = Vec::with_capacity(pop_target);
    // Elites survive unchanged.
    for e in pop.iter().take(cfg.elitism) {
        offspring.push(e.clone());
    }
    while offspring.len() < pop_target {
        if !offspring.is_empty() && deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        let pa = tournament(pop, cfg.tournament, rng);
        let pb = tournament(pop, cfg.tournament, rng);
        let mut child = if rng.gen_bool(cfg.crossover_rate) {
            crossover(ev, &pop[pa].chromo, &pop[pb].chromo, rng, scratch)
        } else {
            pop[pa.min(pb)].chromo.clone()
        };
        if rng.gen_bool(cfg.mutation_rate) {
            child = mutate(ev, child, rng, scratch);
        }
        if rng.gen_bool(cfg.local_search_rate) {
            child = local_search(ev, child, rng, scratch);
        }
        debug_check_sealed(ev, &child);
        offspring.push(Individual { chromo: child });
    }
    offspring.sort_by(|a, b| a.cost().total_cmp(&b.cost()));
    *pop = offspring;
}

fn tournament(pop: &[Individual], k: usize, rng: &mut SmallRng) -> usize {
    (0..k.max(1))
        .map(|_| rng.gen_range(0..pop.len()))
        .min_by(|&a, &b| pop[a].cost().total_cmp(&pop[b].cost()))
        .unwrap()
}

/// Build a random feasible chromosome by constructive merging from the
/// identity (same merge trajectory as `reference::random_plan`).
pub fn random_chromosome(
    ev: &Evaluator<'_>,
    rng: &mut SmallRng,
    scratch: &mut OpScratch,
) -> Chromosome {
    let ctx = ev.ctx;
    let n = ctx.n_kernels();
    let mut ch = Chromosome::identity(ev);

    let attempts = 2 * n;
    for _ in 0..attempts {
        let k = rng.gen_range(0..n);
        let neigh = ctx.share.neighbors(KernelId(k as u32));
        if neigh.is_empty() {
            continue;
        }
        let m = neigh[rng.gen_range(0..neigh.len())] as usize;
        let (ga, gb) = (
            ch.slot_of(KernelId(k as u32)),
            ch.slot_of(KernelId(m as u32)),
        );
        if ga == gb {
            continue;
        }
        scratch.probe.clear();
        scratch.probe.extend_from_slice(ch.slot_members(ga));
        scratch.probe.extend_from_slice(ch.slot_members(gb));
        let e = ev.group_with(&scratch.probe, &mut scratch.synth);
        if e.feasible() {
            let (i, j) = (ch.position_of_slot(ga), ch.position_of_slot(gb));
            ch.merge_into(i, j, e);
        }
    }
    ch.finalize(ev, scratch);
    ch
}

/// Falkenauer group crossover: inject a selection of B's groups into A,
/// evict intersecting groups, first-fit the orphans, repair.
pub fn crossover(
    ev: &Evaluator<'_>,
    a: &Chromosome,
    b: &Chromosome,
    rng: &mut SmallRng,
    scratch: &mut OpScratch,
) -> Chromosome {
    // Donor groups: B's multi-member slots, in normalized plan order.
    scratch.donors.clear();
    for pos in 0..b.group_count() {
        if b.members_at(pos).len() >= 2 {
            scratch.donors.push(b.slot_id_at(pos));
        }
    }
    if scratch.donors.is_empty() {
        return a.clone();
    }
    // Inject 1..=ceil(half) random donor groups (selection order matters:
    // the injected groups land at the child's tail in this order).
    let count = rng.gen_range(1..=scratch.donors.len().div_ceil(2));
    let donors = std::mem::take(&mut scratch.donors);
    scratch.chosen.clear();
    scratch
        .chosen
        .extend(donors.choose_multiple(rng, count).copied());
    scratch.donors = donors;

    // Donor groups come from one partition, so they are disjoint by
    // construction; only overlaps with the recipient's groups need
    // resolving (evict the intersecting groups, re-seat their orphans).
    scratch.injected.clear();
    scratch.injected.resize(a.n_kernels(), false);
    for &sid in &scratch.chosen {
        for &k in b.slot_members(sid) {
            scratch.injected[k.index()] = true;
        }
    }

    let mut child = a.clone();
    scratch.orphans.clear();
    let recipient_groups = child.group_count();
    for pos in 0..recipient_groups {
        let hit = child
            .members_at(pos)
            .iter()
            .any(|k| scratch.injected[k.index()]);
        if hit {
            scratch.orphans.extend(
                child
                    .members_at(pos)
                    .iter()
                    .filter(|k| !scratch.injected[k.index()]),
            );
            child.kill_group(pos);
        }
    }
    child.compact_order();
    for &sid in &scratch.chosen {
        let eval = b.slot_eval(sid).expect("finalized donor has a known eval");
        child.push_group(b.slot_members(sid), Some(eval));
    }

    let mut orphans = std::mem::take(&mut scratch.orphans);
    first_fit(ev, &mut child, &mut orphans, rng, scratch);
    scratch.orphans = orphans;
    child.finalize(ev, scratch);
    child
}

/// Mutation: bipartition, eliminate, merge, or move one kernel.
pub fn mutate(
    ev: &Evaluator<'_>,
    mut ch: Chromosome,
    rng: &mut SmallRng,
    scratch: &mut OpScratch,
) -> Chromosome {
    match rng.gen_range(0..4u8) {
        3 => {
            // Bipartition a random multi-member group: the only operator
            // that can escape a mega-group local optimum whose improvement
            // requires a coordinated split.
            scratch.multi.clear();
            scratch
                .multi
                .extend((0..ch.group_count()).filter(|&p| ch.members_at(p).len() >= 3));
            if let Some(&gi) = scratch.multi.as_slice().choose(rng) {
                scratch.split_a.clear();
                scratch.split_b.clear();
                for &m in ch.members_at(gi) {
                    if rng.gen_bool(0.5) {
                        scratch.split_a.push(m);
                    } else {
                        scratch.split_b.push(m);
                    }
                }
                if !scratch.split_a.is_empty() && !scratch.split_b.is_empty() {
                    // Halves were not probed (the legacy operator did not
                    // either); finalize resolves them.
                    ch.replace_members(gi, &scratch.split_a, None);
                    ch.push_group(&scratch.split_b, None);
                }
            }
        }
        0 => {
            // Eliminate a random multi-member group, scatter its members.
            scratch.multi.clear();
            scratch
                .multi
                .extend((0..ch.group_count()).filter(|&p| ch.members_at(p).len() >= 2));
            if let Some(&gi) = scratch.multi.as_slice().choose(rng) {
                let mut orphans = std::mem::take(&mut scratch.orphans);
                orphans.clear();
                ch.remove_group_at(gi, &mut orphans);
                first_fit(ev, &mut ch, &mut orphans, rng, scratch);
                scratch.orphans = orphans;
            }
        }
        1 => {
            // Merge two random groups.
            if ch.group_count() >= 2 {
                let gi = rng.gen_range(0..ch.group_count());
                let gj = rng.gen_range(0..ch.group_count());
                if gi != gj {
                    scratch.probe.clear();
                    scratch.probe.extend_from_slice(ch.members_at(gi));
                    scratch.probe.extend_from_slice(ch.members_at(gj));
                    let e = ev.group_with(&scratch.probe, &mut scratch.synth);
                    if e.feasible() {
                        ch.merge_append(gi, gj, e);
                    }
                }
            }
        }
        _ => {
            // Move one kernel to another group. The `choose` happens before
            // the population-size guard — tuple evaluation order is part of
            // the pinned RNG stream.
            scratch.multi.clear();
            scratch
                .multi
                .extend((0..ch.group_count()).filter(|&p| ch.members_at(p).len() >= 2));
            let pick = scratch.multi.as_slice().choose(rng).copied();
            if let (Some(gi), true) = (pick, ch.group_count() >= 2) {
                let vi = rng.gen_range(0..ch.members_at(gi).len());
                let k = ch.members_at(gi)[vi];
                let gj = rng.gen_range(0..ch.group_count());
                if gj != gi {
                    // Grown target and shrunk source scored as one
                    // two-lane batch. The legacy operator skipped the
                    // source probe when the target failed; probing it
                    // anyway costs a shared lane sweep and cannot change
                    // the accept decision (evaluations are pure).
                    scratch.bp.clear();
                    scratch.bp.extend_members(ch.members_at(gj));
                    scratch.bp.push_member(k);
                    scratch.bp.seal();
                    let src_len = ch.members_at(gi).len() - 1;
                    if src_len > 0 {
                        for (x, &m) in ch.members_at(gi).iter().enumerate() {
                            if x != vi {
                                scratch.bp.push_member(m);
                            }
                        }
                        scratch.bp.seal();
                    }
                    ev.group_batch(&mut scratch.bp, &mut scratch.bevals);
                    let target = scratch.bevals[0];
                    let source = (target.feasible() && src_len > 0).then(|| scratch.bevals[1]);
                    let ok =
                        target.feasible() && (src_len == 0 || source.is_some_and(|e| e.feasible()));
                    if ok {
                        ch.push_member(gj, k, target);
                        ch.remove_member(gi, vi, source);
                    }
                }
            }
        }
    }
    ch.finalize(ev, scratch);
    ch
}

/// One sampled local-search action with the evaluations it probed.
enum Act {
    Merge(usize, usize, GroupEval),
    Move(usize, usize, usize, GroupEval, GroupEval),
}

/// Falkenauer's local-improvement step: greedy best-of-sample moves
/// (pairwise merges and single-kernel transfers) applied while they reduce
/// the summed group cost. Bounded per invocation so the GA stays the
/// driver and the hill climber the polisher. Group costs are read from the
/// chromosome's cached evaluations — no per-pass cost re-collection — and
/// the winning action is applied in place in the arena.
///
/// Candidate moves are *batched*: each sampling phase generates its
/// samples with the exact RNG draws of the one-at-a-time loop (the
/// chromosome is untouched while sampling, so the draws see identical
/// state), queues the implied groups in a [`crate::eval::BatchProbe`],
/// scores them lane-per-candidate in one flush, and then replays the
/// winner selection in sample order with identical float comparisons —
/// the chosen action, and therefore the trajectory, is bit-for-bit that
/// of the scalar loop.
pub fn local_search(
    ev: &Evaluator<'_>,
    mut ch: Chromosome,
    rng: &mut SmallRng,
    scratch: &mut OpScratch,
) -> Chromosome {
    let cost_at = |ch: &Chromosome, pos: usize| -> f64 {
        ch.eval_at(pos)
            .expect("local_search input is sealed")
            .time_s
    };
    for _pass in 0..4 {
        let glen = ch.group_count();
        // Improving bipartitions first: sample random splits of larger
        // groups and take the best one found. Descriptor: [gi, ca, _, _, _]
        // with the halves at candidates ca and ca+1.
        scratch.bp.clear();
        scratch.descs.clear();
        for _ in 0..12 {
            let gi = rng.gen_range(0..glen);
            if ch.members_at(gi).len() < 3 {
                continue;
            }
            scratch.split_a.clear();
            scratch.split_b.clear();
            for &m in ch.members_at(gi) {
                if rng.gen_bool(0.5) {
                    scratch.split_a.push(m);
                } else {
                    scratch.split_b.push(m);
                }
            }
            if scratch.split_a.is_empty() || scratch.split_b.is_empty() {
                continue;
            }
            let ca = scratch.bp.push(&scratch.split_a);
            scratch.bp.push(&scratch.split_b);
            scratch.descs.push([gi as u32, ca as u32, 0, 0, 0]);
        }
        ev.group_batch(&mut scratch.bp, &mut scratch.bevals);
        let mut best_split: Option<(f64, usize, usize, GroupEval, GroupEval)> = None;
        for d in &scratch.descs {
            let (gi, ca) = (d[0] as usize, d[1] as usize);
            let (ea, eb) = (scratch.bevals[ca], scratch.bevals[ca + 1]);
            if ea.time_s.is_finite() && eb.time_s.is_finite() {
                let gain = cost_at(&ch, gi) - ea.time_s - eb.time_s;
                if gain > 1e-15 && best_split.as_ref().is_none_or(|(g, ..)| gain > *g) {
                    best_split = Some((gain, gi, ca, ea, eb));
                }
            }
        }
        if let Some((_, gi, ca, ea, eb)) = best_split {
            ch.replace_members(gi, scratch.bp.group(ca), Some(ea));
            ch.push_group(scratch.bp.group(ca + 1), Some(eb));
            continue;
        }

        // Merge/move samples. Descriptors: [0, i, j, _, c] for a merge of
        // i and j at candidate c; [1, i, j, vi, c] for a move with the
        // shrunk source at c and the grown target at c+1 (source first,
        // mirroring the reference probe order).
        scratch.bp.clear();
        scratch.descs.clear();
        let samples = 48.min(glen * glen);
        for _ in 0..samples {
            let i = rng.gen_range(0..glen);
            let j = rng.gen_range(0..glen);
            if i == j {
                continue;
            }
            if rng.gen_bool(0.5) {
                scratch.bp.extend_members(ch.members_at(i));
                scratch.bp.extend_members(ch.members_at(j));
                let c = scratch.bp.seal();
                scratch.descs.push([0, i as u32, j as u32, 0, c as u32]);
            } else if ch.members_at(i).len() >= 2 {
                let vi = rng.gen_range(0..ch.members_at(i).len());
                let k = ch.members_at(i)[vi];
                for (x, &m) in ch.members_at(i).iter().enumerate() {
                    if x != vi {
                        scratch.bp.push_member(m);
                    }
                }
                let c = scratch.bp.seal();
                scratch.bp.extend_members(ch.members_at(j));
                scratch.bp.push_member(k);
                scratch.bp.seal();
                scratch
                    .descs
                    .push([1, i as u32, j as u32, vi as u32, c as u32]);
            }
        }
        ev.group_batch(&mut scratch.bp, &mut scratch.bevals);
        let mut best: Option<(f64, Act)> = None;
        for d in &scratch.descs {
            let (i, j, c) = (d[1] as usize, d[2] as usize, d[4] as usize);
            if d[0] == 0 {
                let e = scratch.bevals[c];
                if e.time_s.is_finite() {
                    let gain = cost_at(&ch, i) + cost_at(&ch, j) - e.time_s;
                    if gain > 1e-15 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                        best = Some((gain, Act::Merge(i, j, e)));
                    }
                }
            } else {
                let vi = d[3] as usize;
                let (es, et) = (scratch.bevals[c], scratch.bevals[c + 1]);
                if es.time_s.is_finite() && et.time_s.is_finite() {
                    let gain = cost_at(&ch, i) + cost_at(&ch, j) - es.time_s - et.time_s;
                    if gain > 1e-15 && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                        best = Some((gain, Act::Move(i, j, vi, es, et)));
                    }
                }
            }
        }
        match best {
            Some((_, Act::Merge(i, j, e))) => {
                ch.merge_into(i, j, e);
            }
            Some((_, Act::Move(i, j, vi, es, et))) => {
                let k = ch.members_at(i)[vi];
                ch.push_member(j, k, et);
                ch.remove_member(i, vi, Some(es));
            }
            None => break,
        }
    }
    ch.finalize(ev, scratch);
    ch
}

/// Insert orphans into existing feasible groups, else as singletons.
fn first_fit(
    ev: &Evaluator<'_>,
    ch: &mut Chromosome,
    orphans: &mut [KernelId],
    rng: &mut SmallRng,
    scratch: &mut OpScratch,
) {
    orphans.shuffle(rng);
    for &k in orphans.iter() {
        let mut placed = false;
        // Probe the bounded random host sample as one lane batch, then
        // seat the kernel in the first feasible host in sample order —
        // the same host the one-at-a-time loop picked (extra probes past
        // it are pure and decide nothing). Placements change membership,
        // so batching stays within one orphan.
        let mut idxs = std::mem::take(&mut scratch.idxs);
        idxs.clear();
        idxs.extend(0..ch.group_count());
        idxs.shuffle(rng);
        scratch.bp.clear();
        for &gi in idxs.iter().take(8) {
            scratch.bp.extend_members(ch.members_at(gi));
            scratch.bp.push_member(k);
            scratch.bp.seal();
        }
        ev.group_batch(&mut scratch.bp, &mut scratch.bevals);
        for (c, &gi) in idxs.iter().take(8).enumerate() {
            let e = scratch.bevals[c];
            if e.feasible() {
                ch.push_member(gi, k, e);
                placed = true;
                break;
            }
        }
        scratch.idxs = idxs;
        if !placed {
            ch.push_group(&[k], Some(ev.singleton(k)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use kfuse_core::fuse::condensation_order;
    use kfuse_core::model::ProposedModel;
    use kfuse_core::pipeline::prepare;
    use kfuse_gpu::{FpPrecision, GpuSpec};
    use kfuse_ir::builder::ProgramBuilder;
    use kfuse_ir::stencil::Offset;
    use kfuse_ir::{Expr, Program};

    /// Six kernels over a shared input with two dependency chains.
    fn program() -> Program {
        let mut pb = ProgramBuilder::new("p", [256, 128, 8]);
        let a = pb.array("A");
        let [b, c, d, e, f, g] = pb.arrays(["B", "C", "D", "E", "F", "G"]);
        pb.kernel("k0")
            .write(b, Expr::at(a) + Expr::lit(1.0))
            .build();
        pb.kernel("k1")
            .write(c, Expr::load(b, Offset::new(1, 0, 0)) * Expr::lit(2.0))
            .build();
        pb.kernel("k2")
            .write(d, Expr::at(a) - Expr::lit(3.0))
            .build();
        pb.kernel("k3").write(e, Expr::at(d) + Expr::at(a)).build();
        pb.kernel("k4").write(f, Expr::at(c) + Expr::at(e)).build();
        pb.kernel("k5")
            .write(g, Expr::at(a) * Expr::lit(0.5))
            .build();
        pb.build()
    }

    fn quick_config(seed: u64) -> HggaConfig {
        HggaConfig {
            population: 30,
            max_generations: 60,
            stall_generations: 15,
            seed,
            ..HggaConfig::default()
        }
    }

    #[test]
    fn hgga_beats_identity_plan() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let solver = HggaSolver {
            config: quick_config(7),
        };
        let out = solver.solve(&ctx, &model);
        let ev = Evaluator::new(&ctx, &model);
        let id_cost = ev.plan(&FusionPlan::identity(6));
        assert!(out.objective.is_finite());
        assert!(
            out.objective < id_cost,
            "HGGA {} vs identity {id_cost}",
            out.objective
        );
        // Result must validate and fuse at least one pair.
        assert!(ctx.validate(&out.plan).is_ok());
        assert!(out.plan.new_kernel_count() >= 1);
    }

    #[test]
    fn hgga_is_deterministic_per_seed() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let s1 = HggaSolver {
            config: quick_config(42),
        }
        .solve(&ctx, &model);
        let s2 = HggaSolver {
            config: quick_config(42),
        }
        .solve(&ctx, &model);
        assert_eq!(s1.plan, s2.plan);
        assert_eq!(s1.objective, s2.objective);
    }

    #[test]
    fn stats_are_populated() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let out = HggaSolver {
            config: quick_config(3),
        }
        .solve(&ctx, &model);
        assert!(out.stats.generations >= 1);
        assert!(out.stats.evaluations >= 1);
        assert!(out.stats.elapsed >= out.stats.time_to_best);
    }

    #[test]
    fn all_returned_plans_are_feasible_across_seeds() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        for seed in 0..5 {
            let out = HggaSolver {
                config: quick_config(seed),
            }
            .solve(&ctx, &model);
            assert!(ctx.validate(&out.plan).is_ok(), "seed {seed}");
            assert!(
                condensation_order(&out.plan, &ctx.exec).is_ok(),
                "seed {seed} cycle"
            );
        }
    }

    #[test]
    fn single_island_reproduces_pre_island_solver_exactly() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        for seed in [7, 42, 1234] {
            let cfg = quick_config(seed);
            assert_eq!(cfg.islands, 1, "defaults must stay single-population");
            let new = HggaSolver {
                config: cfg.clone(),
            }
            .solve(&ctx, &model);
            let old = reference::solve(&cfg, &ctx, &model);
            assert_eq!(new.plan, old.plan, "seed {seed} plan diverged");
            assert_eq!(new.objective, old.objective, "seed {seed} objective");
            assert_eq!(
                new.stats.generations, old.stats.generations,
                "seed {seed} generations"
            );
            assert_eq!(
                new.stats.best_generation, old.stats.best_generation,
                "seed {seed} best generation"
            );
        }
    }

    #[test]
    fn flat_solver_matches_reference_on_synthetic_workload() {
        // Same pin as above, on a machine-generated 24-kernel program: the
        // flat-chromosome path must retrace the reference trajectory on
        // workloads with real dependency/cycle pressure, not just the
        // 6-kernel toy.
        let cfg = kfuse_workloads::synth::SynthConfig {
            kernels: 24,
            ..Default::default()
        };
        let p = kfuse_workloads::synth::generate(&cfg);
        let (_, ctx) = prepare(&p, &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        for seed in [1, 9] {
            let cfg = quick_config(seed);
            let new = HggaSolver {
                config: cfg.clone(),
            }
            .solve(&ctx, &model);
            let old = reference::solve(&cfg, &ctx, &model);
            assert_eq!(new.plan, old.plan, "seed {seed} plan diverged");
            assert_eq!(new.objective, old.objective, "seed {seed} objective");
            assert_eq!(
                new.stats.best_generation, old.stats.best_generation,
                "seed {seed} best generation"
            );
        }
    }

    #[test]
    fn island_counts_yield_feasible_improving_plans() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        let identity_cost = ev.plan(&FusionPlan::identity(6));
        for islands in [2, 3, 4] {
            let out = HggaSolver {
                config: HggaConfig {
                    islands,
                    migration_interval: 5,
                    ..quick_config(11)
                },
            }
            .solve(&ctx, &model);
            assert!(ctx.validate(&out.plan).is_ok(), "islands {islands}");
            assert!(
                out.objective <= identity_cost + 1e-12,
                "islands {islands}: {} vs identity {identity_cost}",
                out.objective
            );
            assert_eq!(out.stats.islands.len(), islands);
            assert!(out.stats.islands.iter().all(|i| i.generations >= 1));
        }
    }

    #[test]
    fn island_mode_is_deterministic_per_seed() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let config = HggaConfig {
            islands: 3,
            migration_interval: 4,
            ..quick_config(99)
        };
        let s1 = HggaSolver {
            config: config.clone(),
        }
        .solve(&ctx, &model);
        let s2 = HggaSolver { config }.solve(&ctx, &model);
        assert_eq!(s1.plan, s2.plan);
        assert_eq!(s1.objective, s2.objective);
        assert_eq!(s1.stats.generations, s2.stats.generations);
        let m1: Vec<u32> = s1
            .stats
            .islands
            .iter()
            .map(|i| i.migrations_received)
            .collect();
        let m2: Vec<u32> = s2
            .stats
            .islands
            .iter()
            .map(|i| i.migrations_received)
            .collect();
        assert_eq!(m1, m2);
    }

    #[test]
    fn migration_spreads_individuals_around_the_ring() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let out = HggaSolver {
            config: HggaConfig {
                islands: 3,
                migration_interval: 2,
                migration_size: 2,
                max_generations: 20,
                stall_generations: 20,
                ..quick_config(5)
            },
        }
        .solve(&ctx, &model);
        // With stall >= max_generations the run executes all epochs, and
        // every epoch except the last migrates.
        assert!(
            out.stats.islands.iter().any(|i| i.migrations_received > 0),
            "no migrations recorded: {:?}",
            out.stats.islands
        );
    }
}
