//! The Hybrid Grouping Genetic Algorithm (§III-C).
//!
//! Follows Falkenauer's grouping GA: chromosomes are variable-length lists
//! of *groups* (prospective new kernels), and the genetic operators act on
//! whole groups so that crossover transmits meaningful building blocks —
//! a good fusion discovered in one individual survives intact in its
//! offspring. The paper's adaptation adds multi-dependency awareness: every
//! individual is repaired to satisfy the full constraint system (path
//! closure 1.3, kinship 1.5, capacity 1.6/1.7, profitability 1.1, and
//! condensation acyclicity) before it enters the population, so infeasible
//! solutions never "pollute the search population".
//!
//! The objective (Eq. 1) is the total projected runtime under any
//! [`PerfModel`]; evaluation is memoized per group ([`Evaluator`]) and the
//! population is evaluated in parallel with rayon.
//!
//! With [`HggaConfig::islands`] > 1 the solver switches to an
//! **island model**: the population is split into that many independent
//! sub-populations, each evolved concurrently with its own RNG stream
//! (derived deterministically from [`HggaConfig::seed`]), and every
//! [`HggaConfig::migration_interval`] generations each island sends clones
//! of its [`HggaConfig::migration_size`] best individuals to its successor
//! on a ring, replacing the receiver's worst. Islands share the sharded
//! evaluation memo, so a group scored on one island is a cache hit on all
//! others. The run remains deterministic for any island count; with
//! `islands == 1` the solver executes the original single-population code
//! path, reproducing its trajectory bit for bit.

use crate::eval::Evaluator;
use kfuse_core::fuse::condensation_order;
use kfuse_core::model::PerfModel;
use kfuse_core::pipeline::{IslandStats, SolveOutcome, SolveStats, Solver};
use kfuse_core::plan::{FusionPlan, PlanContext};
use kfuse_ir::KernelId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::time::Instant;

/// HGGA hyper-parameters. Defaults follow Table VI (population 100) with
/// the stall-based stop criterion described in §VI-C1.
#[derive(Debug, Clone)]
pub struct HggaConfig {
    /// Population size `M`.
    pub population: usize,
    /// Hard cap on generations.
    pub max_generations: u32,
    /// Stop after this many generations without improvement.
    pub stall_generations: u32,
    /// Tournament size for selection.
    pub tournament: usize,
    /// Probability of crossover (else the fitter parent is cloned).
    pub crossover_rate: f64,
    /// Probability of mutating each offspring.
    pub mutation_rate: f64,
    /// Elites copied unchanged into the next generation.
    pub elitism: usize,
    /// Probability of applying the hill-climbing local-improvement step to
    /// an offspring (the "hybrid" of Falkenauer's HGGA).
    pub local_search_rate: f64,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Number of islands evolved concurrently. `1` (the default) runs the
    /// original single-population algorithm bit for bit; larger values
    /// split [`HggaConfig::population`] across that many sub-populations.
    pub islands: usize,
    /// Generations between ring migrations (island mode only).
    pub migration_interval: u32,
    /// Individuals each island sends to its ring successor per migration.
    pub migration_size: usize,
}

impl Default for HggaConfig {
    fn default() -> Self {
        HggaConfig {
            population: 100,
            max_generations: 2000,
            stall_generations: 60,
            tournament: 3,
            crossover_rate: 0.85,
            mutation_rate: 0.35,
            elitism: 2,
            local_search_rate: 0.3,
            seed: 0xC0FFEE,
            islands: 1,
            migration_interval: 10,
            migration_size: 2,
        }
    }
}

/// The HGGA solver.
#[derive(Debug, Clone, Default)]
pub struct HggaSolver {
    /// Hyper-parameters.
    pub config: HggaConfig,
}

impl HggaSolver {
    /// Solver with a specific seed (used to run the paper's 10 repeats).
    pub fn with_seed(seed: u64) -> Self {
        HggaSolver {
            config: HggaConfig {
                seed,
                ..HggaConfig::default()
            },
        }
    }
}

#[derive(Clone)]
struct Individual {
    plan: FusionPlan,
    cost: f64,
}

/// Debug-build cross-check: every chromosome accepted as a new global best
/// is re-validated by the independent `kfuse-verify` constraint checker,
/// so an evaluator bug cannot silently promote an infeasible plan.
/// Compiles to nothing in release builds — search speed is unaffected.
#[cfg(debug_assertions)]
fn debug_verify_best(ctx: &PlanContext, model: &dyn PerfModel, plan: &FusionPlan, cost: f64) {
    // An infinite cost marks a legitimately infeasible placeholder (e.g.
    // an identity plan whose singleton kernels already overflow SMEM);
    // those are never *accepted*, only carried until something better wins.
    if !cost.is_finite() {
        return;
    }
    let report = kfuse_verify::check_plan(&ctx.info, plan, Some(model));
    assert!(
        report.is_clean(),
        "HGGA accepted a plan the independent verifier rejects (cost {cost}):\n{}",
        report.render_human()
    );
}

#[cfg(not(debug_assertions))]
#[inline(always)]
fn debug_verify_best(_: &PlanContext, _: &dyn PerfModel, _: &FusionPlan, _: f64) {}

impl Solver for HggaSolver {
    fn name(&self) -> &str {
        "hgga"
    }

    fn solve(&self, ctx: &PlanContext, model: &dyn PerfModel) -> SolveOutcome {
        if self.config.islands <= 1 {
            self.solve_single(ctx, model)
        } else {
            self.solve_islands(ctx, model)
        }
    }
}

impl HggaSolver {
    /// The original single-population algorithm (`islands <= 1`).
    fn solve_single(&self, ctx: &PlanContext, model: &dyn PerfModel) -> SolveOutcome {
        let cfg = &self.config;
        let ev = Evaluator::new(ctx, model);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let start = Instant::now();

        // Initial population: randomized constructive merges.
        let mut plans: Vec<FusionPlan> = (0..cfg.population)
            .map(|_| random_plan(ctx, &ev, &mut rng))
            .collect();
        let mut pop: Vec<Individual> = evaluate(&ev, std::mem::take(&mut plans));
        pop.sort_by(|a, b| a.cost.total_cmp(&b.cost));

        let mut best = pop[0].plan.clone();
        let mut best_cost = pop[0].cost;
        let mut best_gen = 0u32;
        let mut time_to_best = start.elapsed();
        let mut stall = 0u32;
        let mut generations = 0u32;

        for gen in 1..=cfg.max_generations {
            generations = gen;
            let mut offspring: Vec<FusionPlan> = Vec::with_capacity(cfg.population);
            // Elites survive unchanged.
            for e in pop.iter().take(cfg.elitism) {
                offspring.push(e.plan.clone());
            }
            while offspring.len() < cfg.population {
                let pa = tournament(&pop, cfg.tournament, &mut rng);
                let pb = tournament(&pop, cfg.tournament, &mut rng);
                let mut child = if rng.gen_bool(cfg.crossover_rate) {
                    crossover(ctx, &ev, &pop[pa].plan, &pop[pb].plan, &mut rng)
                } else {
                    pop[pa.min(pb)].plan.clone()
                };
                if rng.gen_bool(cfg.mutation_rate) {
                    child = mutate(ctx, &ev, &child, &mut rng);
                }
                if rng.gen_bool(cfg.local_search_rate) {
                    child = local_search(ctx, &ev, child, &mut rng);
                }
                offspring.push(child);
            }
            let mut next = evaluate(&ev, offspring);
            next.sort_by(|a, b| a.cost.total_cmp(&b.cost));
            pop = next;

            if pop[0].cost < best_cost - 1e-15 {
                best_cost = pop[0].cost;
                best = pop[0].plan.clone();
                debug_verify_best(ctx, model, &best, best_cost);
                best_gen = gen;
                time_to_best = start.elapsed();
                stall = 0;
            } else {
                stall += 1;
                if stall >= cfg.stall_generations {
                    break;
                }
            }
        }

        SolveOutcome {
            plan: best,
            objective: best_cost,
            stats: SolveStats {
                generations,
                evaluations: ev.evaluations(),
                elapsed: start.elapsed(),
                time_to_best,
                best_generation: best_gen,
                islands: Vec::new(),
            },
        }
    }

    /// Island-model evolution (`islands >= 2`): concurrent sub-populations
    /// with deterministic per-island RNG streams and ring migration.
    fn solve_islands(&self, ctx: &PlanContext, model: &dyn PerfModel) -> SolveOutcome {
        let cfg = &self.config;
        let n_islands = cfg.islands;
        let ev = Evaluator::new(ctx, model);
        let start = Instant::now();
        // Split the population budget; keep every island large enough for
        // elitism plus actual selection pressure.
        let pop_target = (cfg.population / n_islands).max(cfg.elitism + 2).max(4);
        let interval = cfg.migration_interval.max(1);
        let emigrants = cfg.migration_size.min(pop_target - 1);

        let mut islands: Vec<Island> = (0..n_islands)
            .map(|i| Island {
                rng: SmallRng::seed_from_u64(island_seed(cfg.seed, i)),
                pop: Vec::new(),
                best: FusionPlan::identity(ctx.n_kernels()),
                best_cost: f64::INFINITY,
                best_gen: 0,
                generations: 0,
                migrations_received: 0,
            })
            .collect();

        // Initial populations, built concurrently. Each island evaluates
        // its own individuals serially — the islands themselves are the
        // unit of parallelism — while sharing the sharded memo.
        {
            let ev = &ev;
            rayon::scope(|s| {
                for isl in islands.iter_mut() {
                    s.spawn(move || {
                        let plans: Vec<FusionPlan> = (0..pop_target)
                            .map(|_| random_plan(ctx, ev, &mut isl.rng))
                            .collect();
                        isl.pop = evaluate_serial(ev, plans);
                        isl.pop.sort_by(|a, b| a.cost.total_cmp(&b.cost));
                        isl.best = isl.pop[0].plan.clone();
                        isl.best_cost = isl.pop[0].cost;
                    });
                }
            });
        }

        let mut global_plan = islands[0].best.clone();
        let mut global_cost = islands[0].best_cost;
        let mut global_gen = 0u32;
        let mut time_to_best = start.elapsed();
        for isl in &islands[1..] {
            if isl.best_cost < global_cost - 1e-15 {
                global_cost = isl.best_cost;
                global_plan = isl.best.clone();
            }
        }

        let mut stall = 0u32;
        let mut gens_done = 0u32;
        while gens_done < cfg.max_generations {
            let epoch = interval.min(cfg.max_generations - gens_done);
            {
                let ev = &ev;
                rayon::scope(|s| {
                    for isl in islands.iter_mut() {
                        s.spawn(move || evolve_island(ctx, ev, cfg, pop_target, isl, epoch));
                    }
                });
            }
            gens_done += epoch;

            // Fold island bests into the global best (island order fixed,
            // strict improvement only — deterministic tie-breaking).
            let mut improved = false;
            for isl in &islands {
                if isl.best_cost < global_cost - 1e-15 {
                    global_cost = isl.best_cost;
                    global_plan = isl.best.clone();
                    global_gen = isl.best_gen;
                    time_to_best = start.elapsed();
                    improved = true;
                }
            }
            if improved {
                debug_verify_best(ctx, model, &global_plan, global_cost);
            }
            if improved {
                stall = 0;
            } else {
                stall += epoch;
                if stall >= cfg.stall_generations {
                    break;
                }
            }

            // Ring migration: emigrant sets are drawn from pre-migration
            // populations so the island order cannot leak into the result.
            if emigrants > 0 && gens_done < cfg.max_generations {
                let packets: Vec<Vec<Individual>> = islands
                    .iter()
                    .map(|isl| isl.pop.iter().take(emigrants).cloned().collect())
                    .collect();
                for (i, packet) in packets.into_iter().enumerate() {
                    let isl = &mut islands[(i + 1) % n_islands];
                    for migrant in packet {
                        // Replace the current worst, keeping pop sorted.
                        *isl.pop.last_mut().expect("island pop is non-empty") = migrant;
                        isl.pop.sort_by(|a, b| a.cost.total_cmp(&b.cost));
                        isl.migrations_received += 1;
                    }
                }
            }
        }

        let island_stats: Vec<IslandStats> = islands
            .iter()
            .map(|isl| IslandStats {
                generations: isl.generations,
                best_generation: isl.best_gen,
                migrations_received: isl.migrations_received,
            })
            .collect();
        SolveOutcome {
            plan: global_plan,
            objective: global_cost,
            stats: SolveStats {
                generations: islands.iter().map(|i| i.generations).max().unwrap_or(0),
                evaluations: ev.evaluations(),
                elapsed: start.elapsed(),
                time_to_best,
                best_generation: global_gen,
                islands: island_stats,
            },
        }
    }
}

/// One island's evolving state.
struct Island {
    rng: SmallRng,
    pop: Vec<Individual>,
    best: FusionPlan,
    best_cost: f64,
    best_gen: u32,
    generations: u32,
    migrations_received: u32,
}

/// Derive island `i`'s RNG seed from the run seed (splitmix64-style mix,
/// so island streams are decorrelated but fully determined by the seed).
fn island_seed(seed: u64, island: usize) -> u64 {
    let mut z = seed ^ (island as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Run `gens` generations of one island. Identical loop body to the serial
/// solver, but offspring are evaluated serially: concurrency lives at the
/// island level, so results cannot depend on thread scheduling.
fn evolve_island(
    ctx: &PlanContext,
    ev: &Evaluator<'_>,
    cfg: &HggaConfig,
    pop_target: usize,
    isl: &mut Island,
    gens: u32,
) {
    for _ in 0..gens {
        isl.generations += 1;
        let mut offspring: Vec<FusionPlan> = Vec::with_capacity(pop_target);
        for e in isl.pop.iter().take(cfg.elitism) {
            offspring.push(e.plan.clone());
        }
        while offspring.len() < pop_target {
            let pa = tournament(&isl.pop, cfg.tournament, &mut isl.rng);
            let pb = tournament(&isl.pop, cfg.tournament, &mut isl.rng);
            let mut child = if isl.rng.gen_bool(cfg.crossover_rate) {
                crossover(ctx, ev, &isl.pop[pa].plan, &isl.pop[pb].plan, &mut isl.rng)
            } else {
                isl.pop[pa.min(pb)].plan.clone()
            };
            if isl.rng.gen_bool(cfg.mutation_rate) {
                child = mutate(ctx, ev, &child, &mut isl.rng);
            }
            if isl.rng.gen_bool(cfg.local_search_rate) {
                child = local_search(ctx, ev, child, &mut isl.rng);
            }
            offspring.push(child);
        }
        let mut next = evaluate_serial(ev, offspring);
        next.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        isl.pop = next;

        if isl.pop[0].cost < isl.best_cost - 1e-15 {
            isl.best_cost = isl.pop[0].cost;
            isl.best = isl.pop[0].plan.clone();
            isl.best_gen = isl.generations;
        }
    }
}

fn evaluate_serial(ev: &Evaluator<'_>, plans: Vec<FusionPlan>) -> Vec<Individual> {
    plans
        .into_iter()
        .map(|plan| {
            let cost = ev.plan(&plan);
            Individual { plan, cost }
        })
        .collect()
}

fn evaluate(ev: &Evaluator<'_>, plans: Vec<FusionPlan>) -> Vec<Individual> {
    plans
        .into_par_iter()
        .map(|plan| {
            let cost = ev.plan(&plan);
            Individual { plan, cost }
        })
        .collect()
}

fn tournament(pop: &[Individual], k: usize, rng: &mut SmallRng) -> usize {
    (0..k.max(1))
        .map(|_| rng.gen_range(0..pop.len()))
        .min_by(|&a, &b| pop[a].cost.total_cmp(&pop[b].cost))
        .unwrap()
}

/// Build a random feasible plan by constructive merging from the identity.
fn random_plan(ctx: &PlanContext, ev: &Evaluator<'_>, rng: &mut SmallRng) -> FusionPlan {
    let n = ctx.n_kernels();
    let mut group_of: Vec<usize> = (0..n).collect();
    let mut groups: Vec<Vec<KernelId>> = (0..n).map(|i| vec![KernelId(i as u32)]).collect();

    let attempts = 2 * n;
    for _ in 0..attempts {
        let k = rng.gen_range(0..n);
        let neigh = ctx.share.neighbors(KernelId(k as u32));
        if neigh.is_empty() {
            continue;
        }
        let m = neigh[rng.gen_range(0..neigh.len())] as usize;
        let (ga, gb) = (group_of[k], group_of[m]);
        if ga == gb || groups[ga].is_empty() || groups[gb].is_empty() {
            continue;
        }
        let mut merged = groups[ga].clone();
        merged.extend_from_slice(&groups[gb]);
        if ev.feasible(&merged) {
            for &kid in &groups[gb] {
                group_of[kid.index()] = ga;
            }
            groups[ga] = merged;
            groups[gb].clear();
        }
    }
    let plan = FusionPlan::new(groups.into_iter().filter(|g| !g.is_empty()).collect());
    repair(ctx, ev, plan, rng)
}

/// Falkenauer group crossover: inject a selection of B's groups into A,
/// evict intersecting groups, first-fit the orphans, repair.
fn crossover(
    ctx: &PlanContext,
    ev: &Evaluator<'_>,
    a: &FusionPlan,
    b: &FusionPlan,
    rng: &mut SmallRng,
) -> FusionPlan {
    let donors: Vec<&Vec<KernelId>> = b.groups.iter().filter(|g| g.len() >= 2).collect();
    if donors.is_empty() {
        return a.clone();
    }
    // Inject 1..=ceil(half) random donor groups.
    let count = rng.gen_range(1..=donors.len().div_ceil(2));
    let mut chosen: Vec<Vec<KernelId>> = donors
        .choose_multiple(rng, count)
        .map(|g| (*g).clone())
        .collect();
    // Donor groups come from one partition, so they are disjoint by
    // construction; only overlaps with the recipient's groups need
    // resolving (evict the intersecting groups, re-seat their orphans).
    let injected: std::collections::HashSet<KernelId> = chosen.iter().flatten().copied().collect();

    let mut child: Vec<Vec<KernelId>> = Vec::new();
    let mut orphans: Vec<KernelId> = Vec::new();
    for g in &a.groups {
        if g.iter().any(|k| injected.contains(k)) {
            orphans.extend(g.iter().filter(|k| !injected.contains(k)));
        } else {
            child.push(g.clone());
        }
    }
    child.append(&mut chosen);

    first_fit(ev, &mut child, orphans, rng);
    repair(ctx, ev, FusionPlan::new(child), rng)
}

/// Mutation: eliminate a group, merge two groups, or move one kernel.
fn mutate(
    ctx: &PlanContext,
    ev: &Evaluator<'_>,
    plan: &FusionPlan,
    rng: &mut SmallRng,
) -> FusionPlan {
    let mut groups = plan.groups.clone();
    match rng.gen_range(0..4u8) {
        3 => {
            // Bipartition a random multi-member group: the only operator
            // that can escape a mega-group local optimum whose improvement
            // requires a coordinated split.
            let multi: Vec<usize> = groups
                .iter()
                .enumerate()
                .filter(|(_, g)| g.len() >= 3)
                .map(|(i, _)| i)
                .collect();
            if let Some(&gi) = multi.as_slice().choose(rng) {
                let members = groups[gi].clone();
                let (mut a, mut b) = (Vec::new(), Vec::new());
                for &m in &members {
                    if rng.gen_bool(0.5) {
                        a.push(m);
                    } else {
                        b.push(m);
                    }
                }
                if !a.is_empty() && !b.is_empty() {
                    groups[gi] = a;
                    groups.push(b);
                }
            }
        }
        0 => {
            // Eliminate a random multi-member group, scatter its members.
            let multi: Vec<usize> = groups
                .iter()
                .enumerate()
                .filter(|(_, g)| g.len() >= 2)
                .map(|(i, _)| i)
                .collect();
            if let Some(&gi) = multi.as_slice().choose(rng) {
                let orphans = groups.remove(gi);
                first_fit(ev, &mut groups, orphans, rng);
            }
        }
        1 => {
            // Merge two random groups.
            if groups.len() >= 2 {
                let gi = rng.gen_range(0..groups.len());
                let gj = rng.gen_range(0..groups.len());
                if gi != gj {
                    let mut merged = groups[gi].clone();
                    merged.extend_from_slice(&groups[gj]);
                    if ev.feasible(&merged) {
                        let (lo, hi) = (gi.min(gj), gi.max(gj));
                        groups.remove(hi);
                        groups.remove(lo);
                        groups.push(merged);
                    }
                }
            }
        }
        _ => {
            // Move one kernel to another group.
            let from: Vec<usize> = groups
                .iter()
                .enumerate()
                .filter(|(_, g)| g.len() >= 2)
                .map(|(i, _)| i)
                .collect();
            if let (Some(&gi), true) = (from.as_slice().choose(rng), groups.len() >= 2) {
                let vi = rng.gen_range(0..groups[gi].len());
                let k = groups[gi][vi];
                let gj = rng.gen_range(0..groups.len());
                if gj != gi {
                    let mut target = groups[gj].clone();
                    target.push(k);
                    let mut source = groups[gi].clone();
                    source.remove(vi);
                    if ev.feasible(&target) && (source.is_empty() || ev.feasible(&source)) {
                        groups[gj] = target;
                        if source.is_empty() {
                            groups.remove(gi);
                        } else {
                            groups[gi] = source;
                        }
                    }
                }
            }
        }
    }
    repair(ctx, ev, FusionPlan::new(groups), rng)
}

/// Falkenauer's local-improvement step: greedy best-of-sample moves
/// (pairwise merges and single-kernel transfers) applied while they reduce
/// the summed group cost. Bounded per invocation so the GA stays the
/// driver and the hill climber the polisher.
fn local_search(
    ctx: &PlanContext,
    ev: &Evaluator<'_>,
    plan: FusionPlan,
    rng: &mut SmallRng,
) -> FusionPlan {
    let mut groups = plan.groups;
    for _pass in 0..4 {
        let costs: Vec<f64> = groups.iter().map(|g| ev.group(g).time_s).collect();
        // Improving bipartitions first: sample random splits of larger
        // groups and take the best one found.
        let mut best_split: Option<(f64, usize, Vec<KernelId>, Vec<KernelId>)> = None;
        for _ in 0..12 {
            let gi = rng.gen_range(0..groups.len());
            if groups[gi].len() < 3 {
                continue;
            }
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for &m in &groups[gi] {
                if rng.gen_bool(0.5) {
                    a.push(m);
                } else {
                    b.push(m);
                }
            }
            if a.is_empty() || b.is_empty() {
                continue;
            }
            let (ta, tb) = (ev.group(&a).time_s, ev.group(&b).time_s);
            if ta.is_finite() && tb.is_finite() {
                let gain = costs[gi] - ta - tb;
                if gain > 1e-15 && best_split.as_ref().is_none_or(|(g, ..)| gain > *g) {
                    best_split = Some((gain, gi, a, b));
                }
            }
        }
        if let Some((_, gi, a, b)) = best_split {
            groups[gi] = a;
            groups.push(b);
            continue;
        }

        let mut best: Option<(f64, usize, usize, Option<usize>)> = None; // (gain, i, j, moved idx)
        let samples = 48.min(groups.len() * groups.len());
        for _ in 0..samples {
            let i = rng.gen_range(0..groups.len());
            let j = rng.gen_range(0..groups.len());
            if i == j {
                continue;
            }
            if rng.gen_bool(0.5) {
                // Merge i and j.
                let mut merged = groups[i].clone();
                merged.extend_from_slice(&groups[j]);
                let t = ev.group(&merged).time_s;
                if t.is_finite() {
                    let gain = costs[i] + costs[j] - t;
                    if gain > 1e-15 && best.is_none_or(|(g, ..)| gain > g) {
                        best = Some((gain, i, j, None));
                    }
                }
            } else if groups[i].len() >= 2 {
                // Move one kernel i→j.
                let vi = rng.gen_range(0..groups[i].len());
                let k = groups[i][vi];
                let mut target = groups[j].clone();
                target.push(k);
                let mut source = groups[i].clone();
                source.remove(vi);
                let ts = if source.is_empty() {
                    0.0
                } else {
                    ev.group(&source).time_s
                };
                let tt = ev.group(&target).time_s;
                if ts.is_finite() && tt.is_finite() {
                    let gain = costs[i] + costs[j] - ts - tt;
                    if gain > 1e-15 && best.is_none_or(|(g, ..)| gain > g) {
                        best = Some((gain, i, j, Some(vi)));
                    }
                }
            }
        }
        match best {
            Some((_, i, j, None)) => {
                let gj = std::mem::take(&mut groups[j]);
                groups[i].extend(gj);
                groups.retain(|g| !g.is_empty());
            }
            Some((_, i, j, Some(vi))) => {
                let k = groups[i].remove(vi);
                groups[j].push(k);
                groups.retain(|g| !g.is_empty());
            }
            None => break,
        }
    }
    repair(ctx, ev, FusionPlan::new(groups), rng)
}

/// Insert orphans into existing feasible groups, else as singletons.
fn first_fit(
    ev: &Evaluator<'_>,
    groups: &mut Vec<Vec<KernelId>>,
    mut orphans: Vec<KernelId>,
    rng: &mut SmallRng,
) {
    orphans.shuffle(rng);
    for k in orphans {
        let mut placed = false;
        // Try a bounded random sample of hosts.
        let mut idxs: Vec<usize> = (0..groups.len()).collect();
        idxs.shuffle(rng);
        for &gi in idxs.iter().take(8) {
            let mut cand = groups[gi].clone();
            cand.push(k);
            if ev.feasible(&cand) {
                groups[gi] = cand;
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push(vec![k]);
        }
    }
}

/// Repair to full feasibility: split infeasible groups into singletons and
/// break condensation cycles.
fn repair(
    ctx: &PlanContext,
    ev: &Evaluator<'_>,
    plan: FusionPlan,
    _rng: &mut SmallRng,
) -> FusionPlan {
    let mut groups: Vec<Vec<KernelId>> = Vec::with_capacity(plan.groups.len());
    for g in plan.groups {
        if g.len() == 1 || ev.feasible(&g) {
            groups.push(g);
        } else {
            for k in g {
                groups.push(vec![k]);
            }
        }
    }
    // Break condensation cycles by splitting one involved group at a time.
    loop {
        let candidate = FusionPlan::new(groups.clone());
        match condensation_order(&candidate, &ctx.exec) {
            Ok(_) => return candidate,
            Err(kfuse_core::fuse::FuseError::OrderCycle(a, _)) => {
                // Split the first stuck group.
                let gi = a.min(candidate.groups.len() - 1);
                let victim = candidate.groups[gi].clone();
                groups = candidate.groups;
                groups.remove(gi);
                for k in victim {
                    groups.push(vec![k]);
                }
            }
            Err(_) => return FusionPlan::identity(ctx.n_kernels()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfuse_core::model::ProposedModel;
    use kfuse_core::pipeline::prepare;
    use kfuse_gpu::{FpPrecision, GpuSpec};
    use kfuse_ir::builder::ProgramBuilder;
    use kfuse_ir::stencil::Offset;
    use kfuse_ir::{Expr, Program};

    /// Six kernels over a shared input with two dependency chains.
    fn program() -> Program {
        let mut pb = ProgramBuilder::new("p", [256, 128, 8]);
        let a = pb.array("A");
        let [b, c, d, e, f, g] = pb.arrays(["B", "C", "D", "E", "F", "G"]);
        pb.kernel("k0")
            .write(b, Expr::at(a) + Expr::lit(1.0))
            .build();
        pb.kernel("k1")
            .write(c, Expr::load(b, Offset::new(1, 0, 0)) * Expr::lit(2.0))
            .build();
        pb.kernel("k2")
            .write(d, Expr::at(a) - Expr::lit(3.0))
            .build();
        pb.kernel("k3").write(e, Expr::at(d) + Expr::at(a)).build();
        pb.kernel("k4").write(f, Expr::at(c) + Expr::at(e)).build();
        pb.kernel("k5")
            .write(g, Expr::at(a) * Expr::lit(0.5))
            .build();
        pb.build()
    }

    fn quick_config(seed: u64) -> HggaConfig {
        HggaConfig {
            population: 30,
            max_generations: 60,
            stall_generations: 15,
            seed,
            ..HggaConfig::default()
        }
    }

    #[test]
    fn hgga_beats_identity_plan() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let solver = HggaSolver {
            config: quick_config(7),
        };
        let out = solver.solve(&ctx, &model);
        let ev = Evaluator::new(&ctx, &model);
        let id_cost = ev.plan(&FusionPlan::identity(6));
        assert!(out.objective.is_finite());
        assert!(
            out.objective < id_cost,
            "HGGA {} vs identity {id_cost}",
            out.objective
        );
        // Result must validate and fuse at least one pair.
        assert!(ctx.validate(&out.plan).is_ok());
        assert!(out.plan.new_kernel_count() >= 1);
    }

    #[test]
    fn hgga_is_deterministic_per_seed() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let s1 = HggaSolver {
            config: quick_config(42),
        }
        .solve(&ctx, &model);
        let s2 = HggaSolver {
            config: quick_config(42),
        }
        .solve(&ctx, &model);
        assert_eq!(s1.plan, s2.plan);
        assert_eq!(s1.objective, s2.objective);
    }

    #[test]
    fn stats_are_populated() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let out = HggaSolver {
            config: quick_config(3),
        }
        .solve(&ctx, &model);
        assert!(out.stats.generations >= 1);
        assert!(out.stats.evaluations >= 1);
        assert!(out.stats.elapsed >= out.stats.time_to_best);
    }

    #[test]
    fn all_returned_plans_are_feasible_across_seeds() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        for seed in 0..5 {
            let out = HggaSolver {
                config: quick_config(seed),
            }
            .solve(&ctx, &model);
            assert!(ctx.validate(&out.plan).is_ok(), "seed {seed}");
            assert!(
                condensation_order(&out.plan, &ctx.exec).is_ok(),
                "seed {seed} cycle"
            );
        }
    }

    /// Verbatim copy of the solver loop as it stood before the island
    /// rework, kept only to pin the `islands == 1` trajectory.
    fn solve_pre_island(
        cfg: &HggaConfig,
        ctx: &PlanContext,
        model: &dyn kfuse_core::model::PerfModel,
    ) -> SolveOutcome {
        let ev = Evaluator::new(ctx, model);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let start = Instant::now();

        let mut plans: Vec<FusionPlan> = (0..cfg.population)
            .map(|_| random_plan(ctx, &ev, &mut rng))
            .collect();
        let mut pop: Vec<Individual> = evaluate(&ev, std::mem::take(&mut plans));
        pop.sort_by(|a, b| a.cost.total_cmp(&b.cost));

        let mut best = pop[0].plan.clone();
        let mut best_cost = pop[0].cost;
        let mut best_gen = 0u32;
        let mut time_to_best = start.elapsed();
        let mut stall = 0u32;
        let mut generations = 0u32;

        for gen in 1..=cfg.max_generations {
            generations = gen;
            let mut offspring: Vec<FusionPlan> = Vec::with_capacity(cfg.population);
            for e in pop.iter().take(cfg.elitism) {
                offspring.push(e.plan.clone());
            }
            while offspring.len() < cfg.population {
                let pa = tournament(&pop, cfg.tournament, &mut rng);
                let pb = tournament(&pop, cfg.tournament, &mut rng);
                let mut child = if rng.gen_bool(cfg.crossover_rate) {
                    crossover(ctx, &ev, &pop[pa].plan, &pop[pb].plan, &mut rng)
                } else {
                    pop[pa.min(pb)].plan.clone()
                };
                if rng.gen_bool(cfg.mutation_rate) {
                    child = mutate(ctx, &ev, &child, &mut rng);
                }
                if rng.gen_bool(cfg.local_search_rate) {
                    child = local_search(ctx, &ev, child, &mut rng);
                }
                offspring.push(child);
            }
            let mut next = evaluate(&ev, offspring);
            next.sort_by(|a, b| a.cost.total_cmp(&b.cost));
            pop = next;

            if pop[0].cost < best_cost - 1e-15 {
                best_cost = pop[0].cost;
                best = pop[0].plan.clone();
                best_gen = gen;
                time_to_best = start.elapsed();
                stall = 0;
            } else {
                stall += 1;
                if stall >= cfg.stall_generations {
                    break;
                }
            }
        }

        SolveOutcome {
            plan: best,
            objective: best_cost,
            stats: SolveStats {
                generations,
                evaluations: ev.evaluations(),
                elapsed: start.elapsed(),
                time_to_best,
                best_generation: best_gen,
                islands: Vec::new(),
            },
        }
    }

    #[test]
    fn single_island_reproduces_pre_island_solver_exactly() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        for seed in [7, 42, 1234] {
            let cfg = quick_config(seed);
            assert_eq!(cfg.islands, 1, "defaults must stay single-population");
            let new = HggaSolver {
                config: cfg.clone(),
            }
            .solve(&ctx, &model);
            let old = solve_pre_island(&cfg, &ctx, &model);
            assert_eq!(new.plan, old.plan, "seed {seed} plan diverged");
            assert_eq!(new.objective, old.objective, "seed {seed} objective");
            assert_eq!(
                new.stats.generations, old.stats.generations,
                "seed {seed} generations"
            );
            assert_eq!(
                new.stats.best_generation, old.stats.best_generation,
                "seed {seed} best generation"
            );
        }
    }

    #[test]
    fn island_counts_yield_feasible_improving_plans() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        let identity_cost = ev.plan(&FusionPlan::identity(6));
        for islands in [2, 3, 4] {
            let out = HggaSolver {
                config: HggaConfig {
                    islands,
                    migration_interval: 5,
                    ..quick_config(11)
                },
            }
            .solve(&ctx, &model);
            assert!(ctx.validate(&out.plan).is_ok(), "islands {islands}");
            assert!(
                out.objective <= identity_cost + 1e-12,
                "islands {islands}: {} vs identity {identity_cost}",
                out.objective
            );
            assert_eq!(out.stats.islands.len(), islands);
            assert!(out.stats.islands.iter().all(|i| i.generations >= 1));
        }
    }

    #[test]
    fn island_mode_is_deterministic_per_seed() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let config = HggaConfig {
            islands: 3,
            migration_interval: 4,
            ..quick_config(99)
        };
        let s1 = HggaSolver {
            config: config.clone(),
        }
        .solve(&ctx, &model);
        let s2 = HggaSolver { config }.solve(&ctx, &model);
        assert_eq!(s1.plan, s2.plan);
        assert_eq!(s1.objective, s2.objective);
        assert_eq!(s1.stats.generations, s2.stats.generations);
        let m1: Vec<u32> = s1
            .stats
            .islands
            .iter()
            .map(|i| i.migrations_received)
            .collect();
        let m2: Vec<u32> = s2
            .stats
            .islands
            .iter()
            .map(|i| i.migrations_received)
            .collect();
        assert_eq!(m1, m2);
    }

    #[test]
    fn migration_spreads_individuals_around_the_ring() {
        let (_, ctx) = prepare(&program(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let out = HggaSolver {
            config: HggaConfig {
                islands: 3,
                migration_interval: 2,
                migration_size: 2,
                max_generations: 20,
                stall_generations: 20,
                ..quick_config(5)
            },
        }
        .solve(&ctx, &model);
        // With stall >= max_generations the run executes all epochs, and
        // every epoch except the last migrates.
        assert!(
            out.stats.islands.iter().any(|i| i.migrations_received > 0),
            "no migrations recorded: {:?}",
            out.stats.islands
        );
    }
}
