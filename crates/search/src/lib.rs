//! Solvers for the kernel-fusion combinatorial optimization problem.
//!
//! * [`hgga`] — the paper's search heuristic (§III-C): a Hybrid Grouping
//!   Genetic Algorithm after Falkenauer, adapted so crossover and mutation
//!   act on *groups* (prospective new kernels) and every individual is
//!   repaired to feasibility (constraints 1.1–1.7 plus condensation
//!   acyclicity) before evaluation. Runs single-population or as a
//!   ring-migration island model over rayon workers (the paper used
//!   OpenMP on 8 cores); `islands = 1` reproduces the pre-island solver
//!   bit for bit.
//! * [`chromo`] — the flat group-encoded [`chromo::Chromosome`] the HGGA
//!   inner loop operates on: arena-backed groups with cached per-group
//!   evaluations, delta rescoring, and an incrementally maintained
//!   inter-group condensation summary (DESIGN.md §10).
//! * [`eval`] — the shared, sharded, memoized group [`Evaluator`]; every
//!   solver scores plans through it, so memo statistics are comparable
//!   across solvers. [`mod@reference`] keeps the frozen pre-island HGGA as
//!   the bit-for-bit pinning baseline.
//! * [`exhaustive`] — exact enumeration of set partitions with feasibility
//!   pruning; the deterministic ground truth used to verify HGGA optimality
//!   on small benchmarks (Fig. 5a).
//! * [`greedy`] — a first-fit-style baseline that repeatedly applies the
//!   best profitable pairwise merge; stands in for the "polynomial-time
//!   approximation" strawman of §III-A.
//! * [`partition`] — hierarchical partition-first planning for 1k–10k
//!   kernel programs: cluster the sharing graph into weakly-coupled
//!   regions, solve each region with the HGGA in parallel, then stitch
//!   profitable cross-region fusions back in with a bounded local search.
//! * [`plancache`] / [`warmstart`] — the cross-solve reuse layer
//!   (DESIGN.md §16): a persistent JSONL plan cache keyed by the
//!   order-insensitive program fingerprint of `kfuse_core::fingerprint`,
//!   and the [`warmstart::WarmSolver`] wrapper that serves exact repeats
//!   outright (after independent re-validation), seeds the GA from
//!   remapped near matches, and enforces an anytime wall-clock budget
//!   with a greedy quality floor.
//!
//! All solvers implement `Solver::solve_observed` from `kfuse-core`: pass
//! a `kfuse_obs::ObsHandle` to record spans (generations, epochs,
//! migrations, memo misses), counters, and objective-trajectory gauges;
//! `solve` is the zero-overhead disabled path. Work counters always
//! accumulate in the evaluator's `kfuse_obs::MetricsRegistry`, and each
//! `SolveOutcome` carries the final `MetricsSnapshot` from which its
//! legacy `SolveStats` view is derived.

#![warn(missing_docs)]

pub mod chromo;
pub mod eval;
pub mod exhaustive;
pub mod greedy;
pub mod hgga;
pub mod partition;
pub mod plancache;
pub mod reference;
pub mod warmstart;

pub use eval::{BatchProbe, Evaluator};
pub use exhaustive::ExhaustiveSolver;
pub use greedy::GreedySolver;
pub use hgga::{HggaConfig, HggaSolver, SolveControls};
pub use partition::{partition_regions, HggaHierSolver, Partition, PartitionMode};
pub use plancache::{CacheEntry, CacheWarning, PlanCache};
pub use warmstart::WarmSolver;
