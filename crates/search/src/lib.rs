//! Solvers for the kernel-fusion combinatorial optimization problem.
//!
//! * [`hgga`] — the paper's search heuristic (§III-C): a Hybrid Grouping
//!   Genetic Algorithm after Falkenauer, adapted so crossover and mutation
//!   act on *groups* (prospective new kernels) and every individual is
//!   repaired to feasibility (constraints 1.1–1.7 plus condensation
//!   acyclicity) before evaluation. Objective evaluation is memoized per
//!   group and parallelized with rayon (the paper used OpenMP on 8 cores).
//! * [`exhaustive`] — exact enumeration of set partitions with feasibility
//!   pruning; the deterministic ground truth used to verify HGGA optimality
//!   on small benchmarks (Fig. 5a).
//! * [`greedy`] — a first-fit-style baseline that repeatedly applies the
//!   best profitable pairwise merge; stands in for the "polynomial-time
//!   approximation" strawman of §III-A.

pub mod chromo;
pub mod eval;
pub mod exhaustive;
pub mod greedy;
pub mod hgga;
pub mod reference;

pub use eval::Evaluator;
pub use exhaustive::ExhaustiveSolver;
pub use greedy::GreedySolver;
pub use hgga::{HggaConfig, HggaSolver};
