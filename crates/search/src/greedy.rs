//! Greedy pairwise-merge baseline.
//!
//! §III-A observes that classical polynomial-time approximations (e.g.
//! first-fit decreasing) do not transfer to kernel fusion because there is
//! no natural notion of "size" to sort by. This solver is the honest
//! attempt anyway: repeatedly apply the single pairwise group merge with
//! the largest projected improvement until no merge improves the
//! objective. It is fast and serves as the non-architecture-aware /
//! non-global baseline the HGGA is compared against.

use crate::eval::Evaluator;
use kfuse_core::fuse::condensation_order;
use kfuse_core::model::PerfModel;
use kfuse_core::pipeline::{SolveOutcome, SolveStats, Solver};
use kfuse_core::plan::{FusionPlan, PlanContext};
use kfuse_ir::KernelId;
use std::time::Instant;

/// The greedy best-merge-first solver.
#[derive(Debug, Clone, Default)]
pub struct GreedySolver;

impl Solver for GreedySolver {
    fn name(&self) -> &str {
        "greedy"
    }

    fn solve(&self, ctx: &PlanContext, model: &dyn PerfModel) -> SolveOutcome {
        let ev = Evaluator::new(ctx, model);
        let start = Instant::now();
        let n = ctx.n_kernels();
        let mut groups: Vec<Vec<KernelId>> = (0..n).map(|i| vec![KernelId(i as u32)]).collect();

        loop {
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..groups.len() {
                for j in i + 1..groups.len() {
                    // Kinship prefilter: skip cross-component pairs.
                    if ctx.share.component(groups[i][0]) != ctx.share.component(groups[j][0]) {
                        continue;
                    }
                    let cur = ev.group(&groups[i]).time_s + ev.group(&groups[j]).time_s;
                    let mut merged = groups[i].clone();
                    merged.extend_from_slice(&groups[j]);
                    let t = ev.group(&merged).time_s;
                    if !t.is_finite() {
                        continue;
                    }
                    let gain = cur - t;
                    if gain > 0.0 && best.is_none_or(|(_, _, g)| gain > g) {
                        // Verify the merged plan remains realizable.
                        let mut cand = groups.clone();
                        let mg = {
                            let mut m = cand[i].clone();
                            m.extend_from_slice(&cand[j]);
                            m
                        };
                        cand.remove(j);
                        cand.remove(i);
                        cand.push(mg);
                        let plan = FusionPlan::new(cand);
                        if ev.plan(&plan).is_finite()
                            && condensation_order(&plan, &ctx.exec).is_ok()
                        {
                            best = Some((i, j, gain));
                        }
                    }
                }
            }
            match best {
                Some((i, j, _)) => {
                    let gj = groups.remove(j);
                    groups[i].extend(gj);
                }
                None => break,
            }
        }

        let plan = FusionPlan::new(groups);
        let objective = ev.plan(&plan);
        SolveOutcome {
            plan,
            objective,
            stats: SolveStats {
                generations: 0,
                evaluations: ev.evaluations(),
                elapsed: start.elapsed(),
                time_to_best: start.elapsed(),
                best_generation: 0,
                islands: Vec::new(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfuse_core::model::ProposedModel;
    use kfuse_core::pipeline::prepare;
    use kfuse_gpu::{FpPrecision, GpuSpec};
    use kfuse_ir::builder::ProgramBuilder;
    use kfuse_ir::Expr;

    #[test]
    fn greedy_fuses_profitable_shared_readers() {
        let mut pb = ProgramBuilder::new("p", [256, 128, 8]);
        let a = pb.array("A");
        let [b, c] = pb.arrays(["B", "C"]);
        pb.kernel("k0")
            .write(b, Expr::at(a) + Expr::lit(1.0))
            .build();
        pb.kernel("k1")
            .write(c, Expr::at(a) * Expr::lit(2.0))
            .build();
        let (_, ctx) = prepare(&pb.build(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let out = GreedySolver.solve(&ctx, &model);
        assert_eq!(out.plan.groups.len(), 1);
        assert!(out.objective.is_finite());
        assert!(ctx.validate(&out.plan).is_ok());
    }

    #[test]
    fn greedy_leaves_unrelated_kernels_alone() {
        let mut pb = ProgramBuilder::new("p", [256, 128, 8]);
        let a = pb.array("A");
        let b = pb.array("B");
        let c = pb.array("C");
        let d = pb.array("D");
        pb.kernel("k0").write(b, Expr::at(a)).build();
        pb.kernel("k1").write(d, Expr::at(c)).build();
        let (_, ctx) = prepare(&pb.build(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let out = GreedySolver.solve(&ctx, &model);
        assert_eq!(out.plan.groups.len(), 2);
    }
}
