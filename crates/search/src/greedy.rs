//! Greedy pairwise-merge baseline.
//!
//! §III-A observes that classical polynomial-time approximations (e.g.
//! first-fit decreasing) do not transfer to kernel fusion because there is
//! no natural notion of "size" to sort by. This solver is the honest
//! attempt anyway: repeatedly apply the single pairwise group merge with
//! the largest projected improvement until no merge improves the
//! objective. It is fast and serves as the non-architecture-aware /
//! non-global baseline the HGGA is compared against.

use crate::eval::{BatchProbe, Evaluator, GroupEval};
use kfuse_core::fuse::{condensation_order_with, CondensationScratch};
use kfuse_core::model::PerfModel;
use kfuse_core::pipeline::{SolveOutcome, SolveStats, Solver};
use kfuse_core::plan::{FusionPlan, PlanContext};
use kfuse_core::synth::SynthScratch;
use kfuse_ir::KernelId;
use kfuse_obs::{Counter, ObsHandle, SpanId};
use std::time::Instant;

/// The greedy best-merge-first solver.
#[derive(Debug, Clone, Default)]
pub struct GreedySolver;

impl Solver for GreedySolver {
    fn name(&self) -> &str {
        "greedy"
    }

    fn solve(&self, ctx: &PlanContext, model: &dyn PerfModel) -> SolveOutcome {
        self.solve_observed(ctx, model, ObsHandle::disabled())
    }

    fn solve_observed(
        &self,
        ctx: &PlanContext,
        model: &dyn PerfModel,
        obs: ObsHandle<'_>,
    ) -> SolveOutcome {
        let ev = Evaluator::observed(ctx, model, obs);
        let start = Instant::now();
        let mut solve_span = obs.span(SpanId::Solve);
        let n = ctx.n_kernels();
        solve_span.set_arg(0, n as u64);
        let mut groups: Vec<Vec<KernelId>> = (0..n).map(|i| vec![KernelId(i as u32)]).collect();

        // Steady-state buffers: the probe pair-merge, the candidate plan's
        // group storage (inner Vec capacity reclaimed after each check via
        // `plan.groups`), and the condensation work arrays.
        let mut merged: Vec<KernelId> = Vec::new();
        let mut cand_pool: Vec<Vec<KernelId>> = Vec::new();
        let mut cscratch = CondensationScratch::new();
        let mut sscratch = SynthScratch::new();
        let mut probe = BatchProbe::new();
        let mut evals: Vec<GroupEval> = Vec::new();
        let mut row: Vec<u32> = Vec::new();

        loop {
            let mut sweep_span = obs.span(SpanId::GreedySweep);
            sweep_span.set_arg(0, groups.len() as u64);
            ev.count(Counter::GreedySweeps, 1);
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..groups.len() {
                // Lane-batch row `i`: every pairwise merge candidate that
                // passes the kinship prefilter, scored in one flush. The
                // solver has no RNG and evaluations are pure, so the
                // best-merge choice is unchanged.
                probe.clear();
                row.clear();
                for j in i + 1..groups.len() {
                    // Kinship prefilter: skip cross-component pairs.
                    if ctx.share.component(groups[i][0]) != ctx.share.component(groups[j][0]) {
                        continue;
                    }
                    probe.extend_members(&groups[i]);
                    probe.extend_members(&groups[j]);
                    probe.seal();
                    row.push(j as u32);
                }
                ev.group_batch(&mut probe, &mut evals);
                for (c, &j) in row.iter().enumerate() {
                    let j = j as usize;
                    let cur = ev.group_with(&groups[i], &mut sscratch).time_s
                        + ev.group_with(&groups[j], &mut sscratch).time_s;
                    let t = evals[c].time_s;
                    if !t.is_finite() {
                        continue;
                    }
                    merged.clear();
                    merged.extend_from_slice(&groups[i]);
                    merged.extend_from_slice(&groups[j]);
                    let gain = cur - t;
                    if gain > 0.0 && best.is_none_or(|(_, _, g)| gain > g) {
                        // Verify the merged plan remains realizable. The
                        // candidate's group vectors are drawn from a pool so
                        // repeated checks allocate nothing once warm.
                        while cand_pool.len() < groups.len() - 1 {
                            cand_pool.push(Vec::new());
                        }
                        cand_pool.truncate(groups.len() - 1);
                        let mut w = 0;
                        for (gi, g) in groups.iter().enumerate() {
                            if gi == i || gi == j {
                                continue;
                            }
                            cand_pool[w].clear();
                            cand_pool[w].extend_from_slice(g);
                            w += 1;
                        }
                        cand_pool[w].clear();
                        cand_pool[w].extend_from_slice(&merged);
                        let plan = FusionPlan::new(std::mem::take(&mut cand_pool));
                        if ev.plan(&plan).is_finite()
                            && condensation_order_with(&plan, &ctx.exec, &mut cscratch).is_ok()
                        {
                            best = Some((i, j, gain));
                        }
                        cand_pool = plan.groups;
                    }
                }
            }
            match best {
                Some((i, j, _)) => {
                    let gj = groups.remove(j);
                    groups[i].extend(gj);
                    ev.count(Counter::GreedyMerges, 1);
                    sweep_span.set_arg(1, 1);
                }
                None => break,
            }
        }

        let plan = FusionPlan::new(groups);
        let objective = ev.plan(&plan);
        let metrics = ev.snapshot();
        let stats = SolveStats {
            elapsed: start.elapsed(),
            time_to_best: start.elapsed(),
            ..SolveStats::from_metrics(&metrics)
        };
        SolveOutcome {
            plan,
            objective,
            stats,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfuse_core::model::ProposedModel;
    use kfuse_core::pipeline::prepare;
    use kfuse_gpu::{FpPrecision, GpuSpec};
    use kfuse_ir::builder::ProgramBuilder;
    use kfuse_ir::Expr;

    #[test]
    fn greedy_fuses_profitable_shared_readers() {
        let mut pb = ProgramBuilder::new("p", [256, 128, 8]);
        let a = pb.array("A");
        let [b, c] = pb.arrays(["B", "C"]);
        pb.kernel("k0")
            .write(b, Expr::at(a) + Expr::lit(1.0))
            .build();
        pb.kernel("k1")
            .write(c, Expr::at(a) * Expr::lit(2.0))
            .build();
        let (_, ctx) = prepare(&pb.build(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let out = GreedySolver.solve(&ctx, &model);
        assert_eq!(out.plan.groups.len(), 1);
        assert!(out.objective.is_finite());
        assert!(ctx.validate(&out.plan).is_ok());
    }

    #[test]
    fn greedy_leaves_unrelated_kernels_alone() {
        let mut pb = ProgramBuilder::new("p", [256, 128, 8]);
        let a = pb.array("A");
        let b = pb.array("B");
        let c = pb.array("C");
        let d = pb.array("D");
        pb.kernel("k0").write(b, Expr::at(a)).build();
        pb.kernel("k1").write(d, Expr::at(c)).build();
        let (_, ctx) = prepare(&pb.build(), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let out = GreedySolver.solve(&ctx, &model);
        assert_eq!(out.plan.groups.len(), 2);
    }
}
