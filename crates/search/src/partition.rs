//! Hierarchical partition-first planning.
//!
//! The flat island HGGA scales comfortably to the paper's 142-kernel
//! SCALE-LES program but goes superlinear well before the 1k–10k-kernel
//! programs production array codes reach (the regime Kristensen et al.
//! target with cheap partitioning heuristics). This module adds the
//! decomposition layer ROADMAP item 2 calls for:
//!
//! 1. a **partition pass** ([`partition_regions`]) clustering the kernels
//!    into weakly-coupled regions by sharing density — a greedy
//!    modularity-style agglomeration over the array-sharing graph with a
//!    coupling threshold and a max-region-size knob, deterministic for a
//!    given program;
//! 2. **parallel region solves**: each region becomes a self-contained
//!    sub-[`Program`](kfuse_ir::Program) (see [`kfuse_core::subprogram`])
//!    solved by the existing HGGA with its own memo shard and a
//!    splitmix-derived RNG stream, with a greedy warm-start as the
//!    per-region quality floor;
//! 3. a **boundary-stitching pass** re-opening only inter-region candidate
//!    groups (kernels whose sharing sets cross a cut) and running a
//!    bounded local search over them, so profitable cross-region fusions
//!    the partitioner severed can still be recovered.
//!
//! `PartitionMode::Off` delegates verbatim to the flat solver and is
//! bit-for-bit identical to it; `Auto` stays flat below
//! [`HggaHierSolver::FLAT_THRESHOLD`] kernels. Every accepted group is
//! re-validated against the *global* constraint system (a region-locally
//! feasible group can violate path closure through an outside kernel), so
//! plans pass the independent verifier regardless of how the program was
//! cut.

use crate::eval::Evaluator;
use crate::greedy::GreedySolver;
use crate::hgga::{HggaConfig, HggaSolver, SolveControls};
use kfuse_core::depgraph::DependencyGraph;
use kfuse_core::exec_order::ExecOrderGraph;
use kfuse_core::fingerprint::{kernel_signatures, region_fingerprint};
use kfuse_core::fuse::{condensation_order_with, CondensationScratch};
use kfuse_core::kinship::ShareGraph;
use kfuse_core::metadata::ProgramInfo;
use kfuse_core::model::PerfModel;
use kfuse_core::pipeline::{SolveOutcome, SolveStats, Solver};
use kfuse_core::plan::{FusionPlan, PlanContext};
use kfuse_core::subprogram::extract_region;
use kfuse_ir::KernelId;
use kfuse_obs::{Counter, Gauge, MetricsSnapshot, ObsHandle, SpanId};
use std::time::Instant;

/// How the hierarchical solver decomposes the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMode {
    /// Partition when the program is large enough to benefit
    /// (≥ [`HggaHierSolver::FLAT_THRESHOLD`] kernels), with the default
    /// region-size cap; stay flat below it.
    Auto,
    /// Never partition: delegate to the flat solver (bit-for-bit
    /// identical trajectories).
    Off,
    /// Always partition, with this max-region-size cap (clamped to ≥ 2).
    MaxRegion(usize),
}

impl std::str::FromStr for PartitionMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(PartitionMode::Auto),
            "off" => Ok(PartitionMode::Off),
            n => n
                .parse::<usize>()
                .map(PartitionMode::MaxRegion)
                .map_err(|_| {
                    format!("--partition takes auto, off, or a max region size, got `{n}`")
                }),
        }
    }
}

/// Result of the partition pass.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Kernel regions: disjoint, covering, each sorted ascending, ordered
    /// by first member.
    pub regions: Vec<Vec<KernelId>>,
    /// Kernels whose sharing sets cross a region cut, sorted ascending —
    /// the only kernels the stitching pass re-opens.
    pub boundary: Vec<KernelId>,
}

impl Partition {
    /// Region index of every kernel.
    pub fn region_of(&self, n_kernels: usize) -> Vec<u32> {
        let mut of = vec![0u32; n_kernels];
        for (ri, r) in self.regions.iter().enumerate() {
            for k in r {
                of[k.index()] = ri as u32;
            }
        }
        of
    }
}

/// Sharing sets above this cardinality contribute chain edges (consecutive
/// member pairs) instead of all pairs, keeping the coupling graph
/// near-linear in program size.
const DENSE_SET_LIMIT: usize = 16;

/// Cluster the kernels of `ctx` into weakly-coupled regions of at most
/// `max_region` kernels whose pairwise coupling is at least
/// `min_coupling`.
///
/// Coupling between two kernels is the sharing density of the arrays they
/// have in common: each shared array `a` with sharing set `S(a)`
/// contributes `1/(|S(a)|−1)` to every same-epoch, same-stream pair it
/// connects (fusing across epochs or streams is always infeasible, so
/// those pairs carry no useful coupling). Regions are grown by a greedy
/// modularity-style agglomeration: edges are visited in decreasing
/// coupling order (ties broken by kernel id) and merged union-find style
/// while the size cap holds — deterministic for a given program, and
/// O(E log E) overall.
pub fn partition_regions(ctx: &PlanContext, max_region: usize, min_coupling: f64) -> Partition {
    let n = ctx.n_kernels();
    let max_region = max_region.max(2);
    let info = &ctx.info;

    // Array → touching kernels, from the metadata (ids ascending).
    let mut touchers: Vec<Vec<u32>> = vec![Vec::new(); info.n_arrays];
    for (ki, m) in info.kernels.iter().enumerate() {
        for u in &m.uses {
            touchers[u.array.index()].push(ki as u32);
        }
    }

    // Accumulate coupling weights over unordered kernel pairs.
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    for t in &touchers {
        if t.len() < 2 {
            continue;
        }
        let w = 1.0 / (t.len() as f64 - 1.0);
        let mut push = |a: u32, b: u32| {
            let (a, b) = if a < b { (a, b) } else { (b, a) };
            let (ai, bi) = (a as usize, b as usize);
            if info.epochs[ai] == info.epochs[bi] && info.streams[ai] == info.streams[bi] {
                edges.push((a, b, w));
            }
        };
        if t.len() <= DENSE_SET_LIMIT {
            for i in 0..t.len() {
                for j in i + 1..t.len() {
                    push(t[i], t[j]);
                }
            }
        } else {
            for p in t.windows(2) {
                push(p[0], p[1]);
            }
        }
    }
    // Merge duplicate pairs, then order by coupling (desc, ids asc).
    edges.sort_unstable_by_key(|x| (x.0, x.1));
    let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(edges.len());
    for e in edges {
        match merged.last_mut() {
            Some(m) if m.0 == e.0 && m.1 == e.1 => m.2 += e.2,
            _ => merged.push(e),
        }
    }
    merged.sort_by(|x, y| {
        y.2.total_cmp(&x.2)
            .then_with(|| (x.0, x.1).cmp(&(y.0, y.1)))
    });

    // Union-find agglomeration under the size cap.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut size: Vec<u32> = vec![1; n];
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut r = x;
        while parent[r as usize] != r {
            r = parent[r as usize];
        }
        let mut c = x;
        while parent[c as usize] != r {
            let next = parent[c as usize];
            parent[c as usize] = r;
            c = next;
        }
        r
    }
    for &(a, b, w) in &merged {
        if w < min_coupling {
            break;
        }
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb && size[ra as usize] + size[rb as usize] <= max_region as u32 {
            // Root at the smaller id so labels are deterministic.
            let (keep, drop) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parent[drop as usize] = keep;
            size[keep as usize] += size[drop as usize];
        }
    }

    // Materialize regions ordered by first member.
    let mut by_root: Vec<Vec<KernelId>> = vec![Vec::new(); n];
    for k in 0..n as u32 {
        let r = find(&mut parent, k);
        by_root[r as usize].push(KernelId(k));
    }
    let regions: Vec<Vec<KernelId>> = by_root.into_iter().filter(|r| !r.is_empty()).collect();

    // Boundary kernels: members of any sharing set spanning ≥ 2 regions.
    let mut region_of = vec![0u32; n];
    for (ri, r) in regions.iter().enumerate() {
        for k in r {
            region_of[k.index()] = ri as u32;
        }
    }
    let mut boundary: Vec<KernelId> = Vec::new();
    for t in &touchers {
        if t.len() >= 2
            && t.iter()
                .any(|&k| region_of[k as usize] != region_of[t[0] as usize])
        {
            boundary.extend(t.iter().map(|&k| KernelId(k)));
        }
    }
    boundary.sort_unstable();
    boundary.dedup();

    Partition { regions, boundary }
}

/// One region's contribution to the merged plan.
struct RegionResult {
    /// Groups in global kernel ids.
    groups: Vec<Vec<KernelId>>,
    /// Metrics of the sub-solve (merged into the outer registry).
    metrics: MetricsSnapshot,
}

/// The hierarchical partition-first solver (`hgga-hier`).
///
/// Wraps the flat [`HggaSolver`] in the decompose → solve-per-region →
/// stitch pipeline described in the module docs. All knobs that shape the
/// per-region evolution live in [`HggaHierSolver::config`] exactly as for
/// the flat solver; `config.islands` only applies when the solver
/// delegates to the flat path (region parallelism replaces island
/// parallelism in the hierarchical path, which runs one island per
/// region).
#[derive(Debug, Clone)]
pub struct HggaHierSolver {
    /// GA parameters, shared with the flat solver.
    pub config: HggaConfig,
    /// Decomposition mode.
    pub partition: PartitionMode,
    /// Minimum coupling for an agglomeration merge.
    pub min_coupling: f64,
    /// Maximum stitching sweeps over the cross-region candidates.
    pub stitch_passes: usize,
}

impl HggaHierSolver {
    /// Programs below this size solve flat under [`PartitionMode::Auto`]:
    /// the flat HGGA is comfortably fast there and global search strictly
    /// dominates a decomposition.
    pub const FLAT_THRESHOLD: usize = 200;

    /// Default max-region-size cap under [`PartitionMode::Auto`].
    pub const DEFAULT_MAX_REGION: usize = 64;

    /// Programs up to this size get a whole-program greedy quality floor
    /// after stitching (greedy's pairwise sweep is quadratic, so the floor
    /// is confined to sizes where it is effectively free).
    pub const GREEDY_FLOOR_LIMIT: usize = 256;

    /// Construct with a seed, [`PartitionMode::Auto`], and default knobs.
    pub fn with_seed(seed: u64) -> Self {
        HggaHierSolver {
            config: HggaConfig {
                seed,
                ..HggaConfig::default()
            },
            partition: PartitionMode::Auto,
            min_coupling: 1e-3,
            stitch_passes: 4,
        }
    }

    /// The flat solver this one delegates to (and whose trajectories
    /// `PartitionMode::Off` reproduces bit-for-bit).
    fn flat(&self) -> HggaSolver {
        HggaSolver {
            config: self.config.clone(),
        }
    }

    fn solve_hier(
        &self,
        ctx: &PlanContext,
        model: &dyn PerfModel,
        obs: ObsHandle<'_>,
        max_region: usize,
        controls: &SolveControls,
    ) -> SolveOutcome {
        let n = ctx.n_kernels();
        let program = ctx
            .program
            .as_ref()
            .expect("caller checked ctx.program is present");
        let start = Instant::now();
        let ev = Evaluator::observed(ctx, model, obs);
        let mut solve_span = obs.span(SpanId::Solve);
        solve_span.set_arg(0, n as u64);
        solve_span.set_arg(1, 1);

        // 1. Partition pass.
        let part = {
            let t0 = Instant::now();
            let part = partition_regions(ctx, max_region, self.min_coupling);
            obs.record_span(
                SpanId::PartitionPass,
                0,
                t0,
                t0.elapsed(),
                [n as u64, part.regions.len() as u64],
            );
            part
        };
        ev.metrics()
            .add(Counter::BoundaryKernels, part.boundary.len() as u64);

        // Warm-start projection: restrict each seed plan to the groups that
        // fall wholly inside a region (remapped to region-local ids), and
        // decide per region whether the cached sub-fingerprint lets the
        // greedy floor be skipped. All of it is gated on non-cold controls,
        // so the cold path computes no colors and skips nothing.
        let mut region_ctrl: Vec<(SolveControls, bool)> = Vec::new();
        region_ctrl.resize_with(part.regions.len(), Default::default);
        if !controls.is_cold() {
            // Region sub-fingerprints fold the members' *local* signatures
            // (not the WL-refined colors): a perturbation elsewhere in the
            // program must not invalidate an untouched region's entry.
            let sigs =
                (!controls.cached_region_fps.is_empty()).then(|| kernel_signatures(&ctx.info));
            let mut skips = 0u64;
            for (ri, region) in part.regions.iter().enumerate() {
                if region.len() < 2 {
                    continue;
                }
                let mut c = SolveControls {
                    deadline: controls.deadline,
                    ..Default::default()
                };
                c.seeds.extend(
                    controls
                        .seeds
                        .iter()
                        .filter_map(|plan| project_seed(plan, region)),
                );
                // Skip the greedy floor only when the cache both knows this
                // exact sub-program *and* contributed a seed to climb from.
                let skip = !c.seeds.is_empty()
                    && sigs.as_ref().is_some_and(|sigs| {
                        controls
                            .cached_region_fps
                            .contains(&region_fingerprint(sigs, region))
                    });
                if skip {
                    skips += 1;
                }
                region_ctrl[ri] = (c, skip);
            }
            ev.metrics().add(Counter::RegionFloorSkips, skips);
        }

        // 2. Parallel region solves. Slots are indexed by region, so the
        // merge order — and with it the whole trajectory — is independent
        // of how the solves are scheduled across threads.
        let mut results: Vec<Option<RegionResult>> = Vec::new();
        results.resize_with(part.regions.len(), || None);
        let seed = self.config.seed;
        let base_cfg = &self.config;
        rayon::scope(|s| {
            for (ri, ((slot, region), ctrl)) in results
                .iter_mut()
                .zip(&part.regions)
                .zip(&region_ctrl)
                .enumerate()
            {
                if region.len() < 2 {
                    *slot = Some(RegionResult {
                        groups: vec![region.clone()],
                        metrics: MetricsSnapshot::default(),
                    });
                    continue;
                }
                s.spawn(move || {
                    let t0 = Instant::now();
                    let r = solve_one_region(
                        program, ctx, model, base_cfg, seed, ri, region, &ctrl.0, ctrl.1,
                    );
                    obs.record_span(
                        SpanId::RegionSolve,
                        ri as u32 + 1,
                        t0,
                        t0.elapsed(),
                        [region.len() as u64, ri as u64],
                    );
                    *slot = Some(r);
                });
            }
        });

        // Merge region plans and fold the sub-solve metrics into the outer
        // registry so `kfuse stats` sees the whole run.
        let mut groups: Vec<Vec<KernelId>> = Vec::new();
        let mut regions_solved = 0u64;
        for r in results.into_iter().flatten() {
            if !r.metrics.is_empty() {
                regions_solved += 1;
                for c in Counter::ALL {
                    ev.metrics().add(c, r.metrics.get(c));
                }
            }
            groups.extend(r.groups);
        }
        ev.metrics().add(Counter::RegionsSolved, regions_solved);

        // 3. Global re-validation: a region-locally feasible group can
        // still violate path closure through a kernel outside its region.
        let mut split = 0u64;
        let mut validated: Vec<Vec<KernelId>> = Vec::with_capacity(groups.len());
        for g in groups {
            if g.len() >= 2 && !ev.group(&g).feasible() {
                split += 1;
                validated.extend(g.into_iter().map(|k| vec![k]));
            } else {
                validated.push(g);
            }
        }
        let mut groups = validated;
        groups.sort_by_key(|g| g[0]);

        // Cross-region condensation repair: groups from different regions
        // can be mutually ordered even though each one passes path closure
        // (closure only constrains kernels on actual paths between members,
        // not membership interleavings). Find an actual cycle in the group
        // condensation and split its smallest multi-kernel member into
        // singletons until the plan is acyclic; each split removes one
        // multi-kernel group, so this terminates.
        loop {
            let mut group_of = vec![u32::MAX; n];
            for (gi, g) in groups.iter().enumerate() {
                for k in g {
                    group_of[k.index()] = gi as u32;
                }
            }
            let mut succ: Vec<Vec<u32>> = vec![Vec::new(); groups.len()];
            for (gi, g) in groups.iter().enumerate() {
                ctx.exec
                    .group_succs_into(g, &group_of, gi as u32, &mut succ[gi]);
            }
            ev.metrics().incr(Counter::CondensationChecks);
            let Some(cycle) = find_cycle(&succ) else {
                break;
            };
            // A cycle among singletons alone is impossible (the kernel
            // exec graph is a DAG), so a multi-kernel victim exists. Break
            // the cheapest fusion: fewest members, ties to the lower group.
            let victim = cycle
                .iter()
                .copied()
                .filter(|&gi| groups[gi].len() >= 2)
                .min_by_key(|&gi| (groups[gi].len(), gi))
                .expect("a condensation cycle must contain a multi-kernel group");
            let g = std::mem::take(&mut groups[victim]);
            groups.extend(g.into_iter().map(|k| vec![k]));
            groups.retain(|g| !g.is_empty());
            groups.sort_by_key(|g| g[0]);
            split += 1;
        }
        ev.metrics().add(Counter::GroupsSplit, split);

        // 4. Boundary stitching.
        self.stitch(ctx, &ev, &part, &mut groups, obs);

        let mut plan = FusionPlan::from_sorted_groups(groups);
        let mut objective = ev.plan(&plan);
        debug_assert!(objective.is_finite(), "hier plan must be globally feasible");

        // Global greedy floor (small programs only — greedy's pairwise
        // sweep is quadratic): a forced decomposition on a small,
        // strongly-coupled program can sever fusions even greedy finds,
        // so never return a plan worse than the polynomial baseline.
        if n <= Self::GREEDY_FLOOR_LIMIT {
            let greedy = GreedySolver.solve(ctx, model);
            let greedy_objective = ev.plan(&greedy.plan);
            if greedy_objective < objective - 1e-15 {
                plan = greedy.plan;
                objective = greedy_objective;
            }
        }

        ev.metrics().set_gauge(Gauge::BestObjective, objective);
        ev.metrics().set_gauge(Gauge::CacheHitRate, ev.hit_rate());
        ev.metrics().set_gauge(Gauge::MissRate, ev.miss_rate());
        obs.value(Gauge::BestObjective, objective);
        let metrics = ev.snapshot();
        let stats = SolveStats {
            elapsed: start.elapsed(),
            time_to_best: start.elapsed(),
            ..SolveStats::from_metrics(&metrics)
        };
        SolveOutcome {
            plan,
            objective,
            stats,
            metrics,
        }
    }

    /// Bounded local search over cross-region candidates: each pass first
    /// sweeps the group pairs connected by a cut-crossing sharing set and
    /// commits every feasible, strictly improving, condensation-acyclic
    /// merge; it then sweeps single boundary kernels, moving one across the
    /// cut into a sharing-connected group when the two new groups together
    /// beat the old pair (recovering fusions the partitioner severed in a
    /// shape whole-group merges cannot reach). Deterministic: candidates
    /// are visited in sorted order and commits apply immediately.
    fn stitch(
        &self,
        ctx: &PlanContext,
        ev: &Evaluator<'_>,
        part: &Partition,
        groups: &mut Vec<Vec<KernelId>>,
        obs: ObsHandle<'_>,
    ) {
        let n = ctx.n_kernels();
        let t0 = Instant::now();
        let region_of = part.region_of(n);

        // Arrays whose sharing sets cross a cut, as kernel lists.
        let info = &ctx.info;
        let mut cut_sets: Vec<Vec<u32>> = Vec::new();
        {
            let mut touchers: Vec<Vec<u32>> = vec![Vec::new(); info.n_arrays];
            for (ki, m) in info.kernels.iter().enumerate() {
                for u in &m.uses {
                    touchers[u.array.index()].push(ki as u32);
                }
            }
            for t in touchers {
                if t.len() >= 2
                    && t.iter()
                        .any(|&k| region_of[k as usize] != region_of[t[0] as usize])
                {
                    cut_sets.push(t);
                }
            }
        }

        let mut group_of: Vec<u32> = vec![u32::MAX; n];
        for (gi, g) in groups.iter().enumerate() {
            for k in g {
                group_of[k.index()] = gi as u32;
            }
        }
        let mut times: Vec<f64> = groups.iter().map(|g| ev.group(g).time_s).collect();
        let mut cscratch = CondensationScratch::default();
        let mut candidates_seen = 0u64;
        let mut merges = 0u64;

        for _pass in 0..self.stitch_passes {
            // Candidate pairs for this sweep, in deterministic order.
            let mut cands: Vec<(u32, u32)> = Vec::new();
            for t in &cut_sets {
                for i in 0..t.len() {
                    for j in i + 1..t.len() {
                        let (a, b) = (t[i] as usize, t[j] as usize);
                        if region_of[a] == region_of[b] {
                            continue; // intra-region pairs were searched by the region solve
                        }
                        let (ga, gb) = (group_of[a], group_of[b]);
                        if ga != gb {
                            cands.push((ga.min(gb), ga.max(gb)));
                        }
                    }
                }
            }
            cands.sort_unstable();
            cands.dedup();
            candidates_seen += cands.len() as u64;

            let mut changed = false;
            for (ga, gb) in cands {
                let (ga, gb) = (ga as usize, gb as usize);
                // A group may have been merged away earlier in the sweep.
                if groups[ga].is_empty() || groups[gb].is_empty() {
                    continue;
                }
                let mut cand: Vec<KernelId> =
                    groups[ga].iter().chain(&groups[gb]).copied().collect();
                cand.sort_unstable();
                let e = ev.group(&cand);
                if !e.feasible() || e.time_s >= times[ga] + times[gb] - 1e-15 {
                    continue;
                }
                // The merge must keep the whole plan's condensation
                // acyclic — pairwise feasibility cannot see cycles formed
                // with a third group.
                let mut trial: Vec<Vec<KernelId>> = groups
                    .iter()
                    .enumerate()
                    .filter(|(i, g)| !g.is_empty() && *i != gb)
                    .map(|(i, g)| if i == ga { cand.clone() } else { g.clone() })
                    .collect();
                trial.sort_by_key(|g| g[0]);
                let trial = FusionPlan::from_sorted_groups(trial);
                ev.metrics().incr(Counter::CondensationChecks);
                if condensation_order_with(&trial, &ctx.exec, &mut cscratch).is_err() {
                    continue;
                }
                for k in &cand {
                    group_of[k.index()] = ga as u32;
                }
                times[ga] = e.time_s;
                times[gb] = 0.0;
                groups[ga] = cand;
                groups[gb] = Vec::new();
                merges += 1;
                changed = true;
            }

            // Boundary-kernel moves: (kernel, target group) pairs over the
            // cut-crossing sharing sets.
            let mut moves: Vec<(u32, u32)> = Vec::new();
            for t in &cut_sets {
                for &a in t {
                    for &b in t {
                        if region_of[a as usize] == region_of[b as usize] {
                            continue;
                        }
                        let (ga, gb) = (group_of[a as usize], group_of[b as usize]);
                        if ga != gb {
                            moves.push((a, gb));
                        }
                    }
                }
            }
            moves.sort_unstable();
            moves.dedup();
            candidates_seen += moves.len() as u64;

            for (k, gb) in moves {
                let (ki, gb) = (k as usize, gb as usize);
                let ga = group_of[ki] as usize;
                if ga == gb || groups[gb].is_empty() {
                    continue; // an earlier commit rehomed the kernel or target
                }
                let mut new_b = groups[gb].clone();
                new_b.push(KernelId(k));
                new_b.sort_unstable();
                let eb = ev.group(&new_b);
                if !eb.feasible() {
                    continue;
                }
                let new_a: Vec<KernelId> = groups[ga]
                    .iter()
                    .copied()
                    .filter(|x| x.index() != ki)
                    .collect();
                let ta = if new_a.is_empty() {
                    0.0
                } else {
                    let ea = ev.group(&new_a);
                    if !ea.feasible() {
                        continue;
                    }
                    ea.time_s
                };
                if eb.time_s + ta >= times[ga] + times[gb] - 1e-15 {
                    continue;
                }
                let mut trial: Vec<Vec<KernelId>> = groups
                    .iter()
                    .enumerate()
                    .filter(|(i, g)| !g.is_empty() && *i != ga && *i != gb)
                    .map(|(_, g)| g.clone())
                    .collect();
                if !new_a.is_empty() {
                    trial.push(new_a.clone());
                }
                trial.push(new_b.clone());
                trial.sort_by_key(|g| g[0]);
                ev.metrics().incr(Counter::CondensationChecks);
                let trial = FusionPlan::from_sorted_groups(trial);
                if condensation_order_with(&trial, &ctx.exec, &mut cscratch).is_err() {
                    continue;
                }
                group_of[ki] = gb as u32;
                times[gb] = eb.time_s;
                groups[gb] = new_b;
                times[ga] = ta;
                groups[ga] = new_a;
                merges += 1;
                changed = true;
            }

            if !changed {
                break;
            }
        }

        groups.retain(|g| !g.is_empty());
        groups.sort_by_key(|g| g[0]);
        ev.metrics().add(Counter::StitchMerges, merges);
        obs.record_span(
            SpanId::StitchPass,
            0,
            t0,
            t0.elapsed(),
            [candidates_seen, merges],
        );
    }
}

/// Restrict a whole-program seed plan to one region: each group is
/// intersected with the region (the stitch pass can have merged region
/// results into boundary-crossing groups, so requiring full containment
/// would discard almost every cached plan) and intersections that keep at
/// least two members survive, remapped to region-local ids — local id =
/// position in the sorted region. Everything else becomes a singleton.
/// Returns `None` when no multi-member group survives, since a
/// pure-singleton seed is just the identity plan and teaches the region
/// solve nothing.
fn project_seed(plan: &FusionPlan, region: &[KernelId]) -> Option<FusionPlan> {
    let mut covered = vec![false; region.len()];
    let mut groups: Vec<Vec<KernelId>> = Vec::new();
    for g in &plan.groups {
        if g.len() < 2 {
            continue;
        }
        // Region and group are both sorted, so local ids come out sorted.
        let locals: Vec<KernelId> = g
            .iter()
            .filter_map(|k| region.binary_search(k).ok().map(|li| KernelId(li as u32)))
            .collect();
        if locals.len() >= 2 {
            for l in &locals {
                covered[l.index()] = true;
            }
            groups.push(locals);
        }
    }
    if groups.is_empty() {
        return None;
    }
    for (li, done) in covered.iter().enumerate() {
        if !done {
            groups.push(vec![KernelId(li as u32)]);
        }
    }
    groups.sort_by_key(|g| g[0]);
    Some(FusionPlan::from_sorted_groups(groups))
}

/// Solve one region: extract the sub-program, build its context, run the
/// HGGA with a region-derived RNG stream, and keep the greedy plan instead
/// if it scores better (the warm-start quality floor). `controls` carries
/// region-local warm-start seeds and the deadline; `skip_floor` elides the
/// greedy floor when the plan cache already knows this sub-program.
/// Returns groups in global kernel ids.
#[allow(clippy::too_many_arguments)]
fn solve_one_region(
    program: &kfuse_ir::Program,
    ctx: &PlanContext,
    model: &dyn PerfModel,
    base_cfg: &HggaConfig,
    seed: u64,
    region_idx: usize,
    region: &[KernelId],
    controls: &SolveControls,
    skip_floor: bool,
) -> RegionResult {
    let (sub, map) = extract_region(program, region);
    let info = ProgramInfo::extract(&sub, &ctx.info.gpu, ctx.info.precision);
    let exec = ExecOrderGraph::build(&sub);
    let dep = DependencyGraph::build(&sub);
    let share = ShareGraph::build(&dep, sub.kernels.len());
    let sub_ctx = PlanContext::new(info, exec, share).with_program(sub);

    let solver = HggaSolver {
        config: HggaConfig {
            seed: region_seed(seed, region_idx as u64),
            islands: 1,
            ..base_cfg.clone()
        },
    };
    let out = solver.solve_controlled(&sub_ctx, model, ObsHandle::disabled(), controls);
    let best = if skip_floor {
        out
    } else {
        let greedy = GreedySolver.solve(&sub_ctx, model);
        if greedy.objective < out.objective - 1e-15 {
            greedy
        } else {
            out
        }
    };
    RegionResult {
        groups: best.plan.groups.iter().map(|g| map.to_global(g)).collect(),
        metrics: best.metrics,
    }
}

/// Find a directed cycle in a successor-list digraph, returned as the node
/// sequence along the cycle, or `None` if the graph is acyclic. Iterative
/// coloring DFS visiting nodes and edges in index order, so the reported
/// cycle is deterministic.
fn find_cycle(succ: &[Vec<u32>]) -> Option<Vec<usize>> {
    let n = succ.len();
    let mut color = vec![0u8; n]; // 0 = white, 1 = on stack, 2 = done
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (node, next edge index)
    let mut path: Vec<usize> = Vec::new();
    for s in 0..n {
        if color[s] != 0 {
            continue;
        }
        color[s] = 1;
        stack.push((s, 0));
        path.push(s);
        while let Some(top) = stack.last_mut() {
            let u = top.0;
            if top.1 < succ[u].len() {
                let v = succ[u][top.1] as usize;
                top.1 += 1;
                match color[v] {
                    0 => {
                        color[v] = 1;
                        stack.push((v, 0));
                        path.push(v);
                    }
                    1 => {
                        let pos = path
                            .iter()
                            .position(|&x| x == v)
                            .expect("gray node is on the DFS path");
                        return Some(path[pos..].to_vec());
                    }
                    _ => {}
                }
            } else {
                color[u] = 2;
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

/// Splitmix-style per-region seed stream, independent of the per-island
/// stream the flat solver derives (different mixing constant), so a region
/// solve never shares RNG state with an island of the delegated flat path.
fn region_seed(seed: u64, region: u64) -> u64 {
    let mut z = seed ^ (region.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z ^= 0xA5A5_5A5A_1234_5678;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Solver for HggaHierSolver {
    fn name(&self) -> &str {
        "hgga-hier"
    }

    fn solve(&self, ctx: &PlanContext, model: &dyn PerfModel) -> SolveOutcome {
        self.solve_observed(ctx, model, ObsHandle::disabled())
    }

    fn solve_observed(
        &self,
        ctx: &PlanContext,
        model: &dyn PerfModel,
        obs: ObsHandle<'_>,
    ) -> SolveOutcome {
        self.solve_controlled(ctx, model, obs, &SolveControls::default())
    }
}

impl HggaHierSolver {
    /// Effective region-size cap for a program of `n` kernels, or `None`
    /// when this solver configuration would solve it flat.
    pub fn effective_max_region(&self, n: usize) -> Option<usize> {
        match self.partition {
            PartitionMode::Off => None,
            PartitionMode::Auto if n < Self::FLAT_THRESHOLD => None,
            PartitionMode::Auto => Some(Self::DEFAULT_MAX_REGION),
            PartitionMode::MaxRegion(m) => Some(m.max(2)),
        }
    }

    /// [`Solver::solve_observed`] with external [`SolveControls`]
    /// (warm-start seeds, deadline, cached region fingerprints). Default
    /// controls reproduce the uncontrolled solve bit for bit.
    pub fn solve_controlled(
        &self,
        ctx: &PlanContext,
        model: &dyn PerfModel,
        obs: ObsHandle<'_>,
        controls: &SolveControls,
    ) -> SolveOutcome {
        match self.effective_max_region(ctx.n_kernels()) {
            // Flat delegation: identical to today's solver, bit for bit.
            // Region extraction needs the relaxed program; contexts built
            // without one also fall back to the flat path.
            None => self.flat().solve_controlled(ctx, model, obs, controls),
            Some(_) if ctx.program.is_none() => {
                self.flat().solve_controlled(ctx, model, obs, controls)
            }
            Some(m) => self.solve_hier(ctx, model, obs, m, controls),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfuse_core::model::ProposedModel;
    use kfuse_core::pipeline;
    use kfuse_gpu::GpuSpec;

    fn prepared(p: kfuse_ir::Program) -> PlanContext {
        let gpu = GpuSpec::k20x();
        let (_, ctx) = pipeline::prepare(&p, &gpu, gpu.default_precision());
        ctx
    }

    fn quick_config(seed: u64) -> HggaConfig {
        HggaConfig {
            population: 24,
            max_generations: 30,
            stall_generations: 10,
            seed,
            ..HggaConfig::default()
        }
    }

    #[test]
    fn partition_covers_all_kernels_disjointly() {
        let ctx = prepared(kfuse_workloads::synth::clustered(4, 15, 0.3));
        let part = partition_regions(&ctx, 20, 1e-3);
        let mut seen = vec![false; ctx.n_kernels()];
        for r in &part.regions {
            assert!(!r.is_empty());
            assert!(r.windows(2).all(|w| w[0] < w[1]), "regions sorted");
            assert!(r.len() <= 20, "size cap respected: {}", r.len());
            for k in r {
                assert!(!seen[k.index()], "kernel {k} in two regions");
                seen[k.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "partition must cover all kernels");
        assert!(
            part.regions.len() >= 2,
            "coupled program should still split"
        );
    }

    #[test]
    fn partition_is_deterministic() {
        let ctx = prepared(kfuse_workloads::synth::clustered(4, 15, 0.3));
        let a = partition_regions(&ctx, 16, 1e-3);
        let b = partition_regions(&ctx, 16, 1e-3);
        assert_eq!(a.regions, b.regions);
        assert_eq!(a.boundary, b.boundary);
    }

    #[test]
    fn boundary_kernels_touch_cut_crossing_arrays() {
        let ctx = prepared(kfuse_workloads::synth::clustered(4, 15, 0.5));
        let part = partition_regions(&ctx, 16, 1e-3);
        let region_of = part.region_of(ctx.n_kernels());
        // Every boundary kernel shares an array with another region.
        for &k in &part.boundary {
            let m = ctx.info.meta(k);
            let crosses = m.uses.iter().any(|u| {
                ctx.info.kernels.iter().enumerate().any(|(o, om)| {
                    region_of[o] != region_of[k.index()] && om.use_of(u.array).is_some()
                })
            });
            assert!(crosses, "kernel {k} marked boundary without a cut array");
        }
    }

    #[test]
    fn hier_plans_are_feasible_and_deterministic() {
        let ctx = prepared(kfuse_workloads::synth::clustered(4, 15, 0.3));
        let model = ProposedModel::default();
        let mut solver = HggaHierSolver::with_seed(7);
        solver.config = quick_config(7);
        solver.partition = PartitionMode::MaxRegion(16);
        let a = solver.solve(&ctx, &model);
        let b = solver.solve(&ctx, &model);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.objective, b.objective);
        assert!(ctx.validate(&a.plan).is_ok(), "plan must validate globally");
        assert!(a.objective.is_finite());
    }

    #[test]
    fn partition_off_delegates_to_flat_bit_for_bit() {
        let ctx = prepared(kfuse_workloads::synth::scaling(30));
        let model = ProposedModel::default();
        let mut hier = HggaHierSolver::with_seed(17);
        hier.config = quick_config(17);
        hier.partition = PartitionMode::Off;
        let flat = HggaSolver {
            config: quick_config(17),
        };
        let a = hier.solve(&ctx, &model);
        let b = flat.solve(&ctx, &model);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    }

    #[test]
    fn region_seeds_differ_from_island_seeds_and_each_other() {
        let mut seen = std::collections::HashSet::new();
        for r in 0..64 {
            assert!(
                seen.insert(region_seed(0xC0FFEE, r)),
                "region seed collision"
            );
        }
    }
}
