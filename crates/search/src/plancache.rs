//! The persistent, content-addressed plan cache.
//!
//! One JSONL file (`plans.jsonl`) per cache directory: each line is a
//! versioned [`CacheEntry`] keyed by the order-insensitive program
//! fingerprint of [`kfuse_core::fingerprint`], storing the best plan
//! found, its objective, the device/precision it was solved for, the
//! per-kernel local signatures (near-match lookup + remapping) and the
//! sub-fingerprints of the partition regions the hierarchical solver cut
//! (greedy-floor reuse).
//!
//! Durability over cleverness: loads are **corruption-tolerant** — a
//! truncated line, bad JSON, version or device mismatch, or an entry with
//! out-of-range members is *skipped* with a structured [`CacheWarning`],
//! never a panic, so a half-written cache from a killed process degrades
//! to a smaller cache. Writes append one line per solve; rewrites happen
//! only to replace a same-fingerprint entry with a better objective.
//!
//! Writers are **concurrency-disciplined** for the daemon's worker pool:
//! each append is a single `write_all` of a whole line on an `O_APPEND`
//! handle, serialized (together with rewrites) through a process-wide
//! per-file lock, and rewrites go through a temp-file rename that
//! preserves every line the rewriting instance does not own (other
//! devices/precisions, lines appended since its load). Multiple
//! [`PlanCache`] instances over one file therefore never interleave
//! partial JSONL lines.
//! Cached plans are advisory either way: the warm-start layer re-validates
//! anything it serves through the independent verifier before trusting it.

use kfuse_core::plan::FusionPlan;
use kfuse_ir::KernelId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Entry format version; bump on any incompatible field change so old
/// caches age out instead of deserializing garbage.
pub const CACHE_VERSION: u32 = 1;

/// Cache file name inside the cache directory.
const CACHE_FILE: &str = "plans.jsonl";

/// Process-wide append/rewrite locks, one per cache file path.
///
/// Several [`PlanCache`] instances can point at the same `plans.jsonl` —
/// the daemon opens one per worker-visible device/precision pair, and its
/// workers insert concurrently. Appends are written as a single
/// `write_all` of a whole line (newline included) on an `O_APPEND`
/// handle, *and* serialized through this lock, so two in-process writers
/// can never interleave partial JSONL lines. The lock is keyed by the
/// path as given (not canonicalized), which is exact for the daemon's
/// single shared `--cache-dir`; cross-*process* writers are outside its
/// scope and rely on the single-`write_all` append plus the
/// corruption-tolerant loader.
fn file_lock(path: &Path) -> Arc<Mutex<()>> {
    static LOCKS: OnceLock<Mutex<HashMap<PathBuf, Arc<Mutex<()>>>>> = OnceLock::new();
    let mut map = LOCKS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("plan-cache lock registry poisoned");
    map.entry(path.to_path_buf()).or_default().clone()
}

/// One cached solve: the best plan found for a program fingerprint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheEntry {
    /// Format version ([`CACHE_VERSION`] at write time).
    pub version: u32,
    /// Order-insensitive program fingerprint (the lookup key).
    pub fingerprint: u64,
    /// Program name, informational only (never matched on).
    pub program: String,
    /// GPU the plan was solved for (`GpuSpec::name`); entries for another
    /// device are stale and skipped at load.
    pub gpu: String,
    /// Precision tag (`"Single"`/`"Double"`), matched like the GPU.
    pub precision: String,
    /// Kernel count, for cheap plausibility checks before remapping.
    pub n_kernels: u32,
    /// Objective of the cached plan (projected seconds).
    pub objective: f64,
    /// Per-kernel local signatures in kernel-id order
    /// ([`kfuse_core::fingerprint::kernel_signatures`]): the near-match
    /// overlap metric and the kernel remapping key.
    pub kernel_sigs: Vec<u64>,
    /// The plan's groups as kernel indices.
    pub groups: Vec<Vec<u32>>,
    /// Region sub-fingerprints from the hierarchical solve (empty for flat
    /// solves); lets a warm start skip per-region greedy floors.
    pub region_fps: Vec<u64>,
}

impl CacheEntry {
    /// The cached groups as a [`FusionPlan`] (members and groups sorted as
    /// `from_sorted_groups` requires). `None` when any member is out of
    /// range for the entry's own `n_kernels` or a kernel appears twice —
    /// a malformed entry, treated as a miss.
    pub fn plan(&self) -> Option<FusionPlan> {
        let n = self.n_kernels as usize;
        let mut seen = vec![false; n];
        let mut groups: Vec<Vec<KernelId>> = Vec::with_capacity(self.groups.len());
        for g in &self.groups {
            let mut members: Vec<KernelId> = Vec::with_capacity(g.len());
            for &k in g {
                if k as usize >= n || std::mem::replace(&mut seen[k as usize], true) {
                    return None;
                }
                members.push(KernelId(k));
            }
            members.sort_unstable();
            if members.is_empty() {
                return None;
            }
            groups.push(members);
        }
        if !seen.iter().all(|&s| s) {
            return None;
        }
        groups.sort_by_key(|g| g[0]);
        Some(FusionPlan::from_sorted_groups(groups))
    }

    /// Multiset overlap of this entry's kernel signatures with `sigs`,
    /// normalized by the larger program: 1.0 means identical signature
    /// multisets, 0.0 means nothing in common.
    pub fn overlap(&self, sigs: &[u64]) -> f64 {
        if self.kernel_sigs.is_empty() || sigs.is_empty() {
            return 0.0;
        }
        let mut a = self.kernel_sigs.clone();
        let mut b = sigs.to_vec();
        a.sort_unstable();
        b.sort_unstable();
        let (mut i, mut j, mut common) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    common += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        common as f64 / a.len().max(b.len()) as f64
    }
}

/// A load-time problem with one cache line, reported instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheWarning {
    /// 1-based line number in `plans.jsonl`.
    pub line: usize,
    /// What was wrong (bad JSON, version/device mismatch, malformed plan).
    pub reason: String,
}

impl std::fmt::Display for CacheWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "plan cache line {}: {} (skipped)",
            self.line, self.reason
        )
    }
}

/// The loaded cache: usable entries plus the warnings loading produced.
///
/// ```
/// use kfuse_search::plancache::{CacheEntry, PlanCache, CACHE_VERSION};
///
/// let dir = std::env::temp_dir().join(format!("kfuse-doc-cache-{}", std::process::id()));
/// let mut cache = PlanCache::open(&dir, "K20X", "Double");
/// assert!(cache.is_empty() && cache.warnings.is_empty());
/// cache.insert(CacheEntry {
///     version: CACHE_VERSION,
///     fingerprint: 0xFEED,
///     program: "demo".into(),
///     gpu: "K20X".into(),
///     precision: "Double".into(),
///     n_kernels: 2,
///     objective: 1e-3,
///     kernel_sigs: vec![10, 20],
///     groups: vec![vec![0, 1]],
///     region_fps: vec![],
/// }).unwrap();
///
/// // A fresh load (e.g. the next process) sees the persisted entry.
/// let reloaded = PlanCache::open(&dir, "K20X", "Double");
/// assert_eq!(reloaded.lookup_exact(0xFEED).unwrap().n_kernels, 2);
/// // ...scoped by device: the same file opened for the K40 hides it.
/// assert!(PlanCache::open(&dir, "K40", "Double").is_empty());
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct PlanCache {
    dir: PathBuf,
    gpu: String,
    precision: String,
    /// Usable entries, in file order (later same-fingerprint lines win).
    entries: Vec<CacheEntry>,
    /// Structured load warnings (corrupt/stale lines that were skipped).
    pub warnings: Vec<CacheWarning>,
    /// The file ended mid-line (e.g. a killed writer); the next append
    /// must start with a newline or it would fuse with the partial line.
    unterminated: bool,
}

impl PlanCache {
    /// Load the cache in `dir` for one device/precision pair. A missing
    /// directory or file is an empty cache; unreadable or stale lines are
    /// skipped into [`PlanCache::warnings`]. Never panics on cache
    /// content.
    pub fn open(dir: &Path, gpu: &str, precision: &str) -> Self {
        let mut cache = PlanCache {
            dir: dir.to_path_buf(),
            gpu: gpu.to_string(),
            precision: precision.to_string(),
            entries: Vec::new(),
            warnings: Vec::new(),
            unterminated: false,
        };
        let path = dir.join(CACHE_FILE);
        let lock = file_lock(&path);
        let guard = lock.lock().expect("plan-cache file lock poisoned");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return cache,
        };
        drop(guard);
        cache.unterminated = !text.is_empty() && !text.ends_with('\n');
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let entry: CacheEntry = match serde_json::from_str(line) {
                Ok(e) => e,
                Err(e) => {
                    cache.warnings.push(CacheWarning {
                        line: lineno,
                        reason: format!("unparseable entry: {e}"),
                    });
                    continue;
                }
            };
            if entry.version != CACHE_VERSION {
                cache.warnings.push(CacheWarning {
                    line: lineno,
                    reason: format!("version {} != supported {CACHE_VERSION}", entry.version),
                });
                continue;
            }
            if entry.gpu != gpu || entry.precision != precision {
                cache.warnings.push(CacheWarning {
                    line: lineno,
                    reason: format!(
                        "entry for {}/{}, cache opened for {gpu}/{precision}",
                        entry.gpu, entry.precision
                    ),
                });
                continue;
            }
            if entry.kernel_sigs.len() != entry.n_kernels as usize
                || !entry.objective.is_finite()
                || entry.plan().is_none()
            {
                cache.warnings.push(CacheWarning {
                    line: lineno,
                    reason: "malformed entry (bad plan, signatures, or objective)".into(),
                });
                continue;
            }
            // Later lines supersede earlier ones for the same fingerprint
            // (append-mostly writes leave the old line in place).
            cache.entries.retain(|e| e.fingerprint != entry.fingerprint);
            cache.entries.push(entry);
        }
        cache
    }

    /// Number of usable entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no usable entry was loaded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for an exact fingerprint, if any.
    pub fn lookup_exact(&self, fingerprint: u64) -> Option<&CacheEntry> {
        self.entries.iter().find(|e| e.fingerprint == fingerprint)
    }

    /// The nearest entry by kernel-signature overlap, excluding the exact
    /// fingerprint (which [`PlanCache::lookup_exact`] already covers) and
    /// anything below `min_overlap`. Ties break to the earlier entry.
    pub fn lookup_near(
        &self,
        fingerprint: u64,
        sigs: &[u64],
        min_overlap: f64,
    ) -> Option<(&CacheEntry, f64)> {
        let mut best: Option<(&CacheEntry, f64)> = None;
        for e in &self.entries {
            if e.fingerprint == fingerprint {
                continue;
            }
            let ov = e.overlap(sigs);
            if ov >= min_overlap && best.is_none_or(|(_, b)| ov > b) {
                best = Some((e, ov));
            }
        }
        best
    }

    /// The union of every cached region sub-fingerprint plus the whole-
    /// program fingerprints (a whole cached program is also a reusable
    /// "region" when it reappears inside a larger one).
    pub fn region_fps(&self) -> HashSet<u64> {
        let mut fps = HashSet::new();
        for e in &self.entries {
            fps.insert(e.fingerprint);
            fps.extend(e.region_fps.iter().copied());
        }
        fps
    }

    /// Insert (or improve) the entry for `entry.fingerprint` and persist.
    /// Appends one JSONL line; when the fingerprint already exists the
    /// whole file is rewritten iff the new objective is strictly better,
    /// otherwise the insert is a no-op. IO errors are returned, not
    /// panicked, so a read-only cache degrades to read-through.
    pub fn insert(&mut self, entry: CacheEntry) -> std::io::Result<()> {
        if let Some(old) = self.lookup_exact(entry.fingerprint) {
            if old.objective <= entry.objective {
                return Ok(());
            }
            self.entries.retain(|e| e.fingerprint != entry.fingerprint);
            self.entries.push(entry);
            return self.rewrite();
        }
        std::fs::create_dir_all(&self.dir)?;
        // One buffer, one `write_all`: the whole line (newline included,
        // plus a leading newline when the file ended mid-line) lands in a
        // single `O_APPEND` write so concurrent appenders cannot
        // interleave partial JSONL lines. The per-path [`file_lock`]
        // additionally serializes in-process writers against rewrites.
        let json = serde_json::to_string(&entry)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut buf = String::with_capacity(json.len() + 2);
        if std::mem::take(&mut self.unterminated) {
            buf.push('\n');
        }
        buf.push_str(&json);
        buf.push('\n');
        let path = self.dir.join(CACHE_FILE);
        let lock = file_lock(&path);
        let _guard = lock.lock().expect("plan-cache file lock poisoned");
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        f.write_all(buf.as_bytes())?;
        self.entries.push(entry);
        Ok(())
    }

    /// Rewrite the file to replace this cache's superseded lines (used
    /// when an existing fingerprint improves).
    ///
    /// The file may hold more than this instance loaded — entries for
    /// other devices or precisions, lines appended by another instance
    /// since our load — so the rewrite re-reads it under the per-path
    /// lock and preserves every line it does not own: a line is replaced
    /// only when it parses to this cache's GPU/precision/version and its
    /// fingerprint is one of ours. Unparseable (truncated) lines are
    /// dropped — the corruption-tolerant load would skip them anyway.
    /// The result is written to a temp file and renamed into place so a
    /// kill mid-rewrite leaves either the old or the new file, never a
    /// torn one.
    fn rewrite(&mut self) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(CACHE_FILE);
        let lock = file_lock(&path);
        let _guard = lock.lock().expect("plan-cache file lock poisoned");
        let mut out = String::new();
        if let Ok(existing) = std::fs::read_to_string(&path) {
            for line in existing.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                let foreign = match serde_json::from_str::<CacheEntry>(line) {
                    Ok(e) => {
                        e.version != CACHE_VERSION
                            || e.gpu != self.gpu
                            || e.precision != self.precision
                            || self.lookup_exact(e.fingerprint).is_none()
                    }
                    Err(_) => false,
                };
                if foreign {
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        for e in &self.entries {
            let line = serde_json::to_string(e)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            out.push_str(&line);
            out.push('\n');
        }
        self.unterminated = false;
        let tmp = self
            .dir
            .join(format!("{CACHE_FILE}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, &path)
    }

    /// Newline-terminate the file's tail if some (possibly killed) writer
    /// left it mid-line, so the next appender — which may be a plain
    /// `kfuse solve --cache-dir` run with no knowledge of the damage —
    /// starts on a fresh line. The daemon calls this once per cache
    /// during graceful drain. A missing file is a no-op.
    pub fn flush(&mut self) -> std::io::Result<()> {
        let path = self.dir.join(CACHE_FILE);
        let lock = file_lock(&path);
        let _guard = lock.lock().expect("plan-cache file lock poisoned");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return Ok(()),
        };
        if !text.is_empty() && !text.ends_with('\n') {
            let mut f = std::fs::OpenOptions::new().append(true).open(&path)?;
            f.write_all(b"\n")?;
        }
        self.unterminated = false;
        Ok(())
    }

    /// The GPU name this cache was opened for.
    pub fn gpu(&self) -> &str {
        &self.gpu
    }

    /// The precision tag this cache was opened for.
    pub fn precision(&self) -> &str {
        &self.precision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join("kfuse-plancache-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn entry(fp: u64, objective: f64) -> CacheEntry {
        CacheEntry {
            version: CACHE_VERSION,
            fingerprint: fp,
            program: "p".into(),
            gpu: "K20X".into(),
            precision: "Double".into(),
            n_kernels: 3,
            objective,
            kernel_sigs: vec![10, 20, 30],
            groups: vec![vec![0, 2], vec![1]],
            region_fps: vec![77],
        }
    }

    #[test]
    fn roundtrip_preserves_entries() {
        let dir = tmpdir("roundtrip");
        let mut cache = PlanCache::open(&dir, "K20X", "Double");
        assert!(cache.is_empty());
        cache.insert(entry(1, 0.5)).unwrap();
        cache.insert(entry(2, 0.7)).unwrap();

        let reloaded = PlanCache::open(&dir, "K20X", "Double");
        assert_eq!(reloaded.len(), 2);
        assert!(reloaded.warnings.is_empty());
        let e = reloaded.lookup_exact(1).unwrap();
        assert_eq!(e.objective, 0.5);
        let plan = e.plan().unwrap();
        assert_eq!(plan.groups.len(), 2);
        assert_eq!(
            plan.groups[0],
            vec![KernelId(0), KernelId(2)],
            "groups come back sorted"
        );
        assert!(reloaded.region_fps().contains(&77));
        assert!(reloaded.region_fps().contains(&1));
    }

    #[test]
    fn better_objective_replaces_worse_keeps() {
        let dir = tmpdir("improve");
        let mut cache = PlanCache::open(&dir, "K20X", "Double");
        cache.insert(entry(1, 0.5)).unwrap();
        cache.insert(entry(1, 0.9)).unwrap(); // worse: no-op
        assert_eq!(cache.lookup_exact(1).unwrap().objective, 0.5);
        cache.insert(entry(1, 0.3)).unwrap(); // better: replaces
        assert_eq!(cache.lookup_exact(1).unwrap().objective, 0.3);
        let reloaded = PlanCache::open(&dir, "K20X", "Double");
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.lookup_exact(1).unwrap().objective, 0.3);
    }

    #[test]
    fn truncated_line_is_skipped_with_warning() {
        let dir = tmpdir("truncated");
        let mut cache = PlanCache::open(&dir, "K20X", "Double");
        cache.insert(entry(1, 0.5)).unwrap();
        // Simulate a crash mid-append: half a JSON object on the last line.
        let path = dir.join(CACHE_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        let full = serde_json::to_string(&entry(2, 0.7)).unwrap();
        text.push_str(&full[..full.len() / 2]);
        std::fs::write(&path, text).unwrap();

        let reloaded = PlanCache::open(&dir, "K20X", "Double");
        assert_eq!(reloaded.len(), 1, "intact entry survives");
        assert_eq!(reloaded.warnings.len(), 1);
        assert_eq!(reloaded.warnings[0].line, 2);
        assert!(reloaded.warnings[0].reason.contains("unparseable"));
    }

    #[test]
    fn version_and_device_mismatches_are_stale() {
        let dir = tmpdir("stale");
        let mut old = entry(1, 0.5);
        old.version = CACHE_VERSION + 1;
        // Bypass insert's invariants by writing the lines directly.
        let mut other = entry(2, 0.5);
        other.gpu = "K40".into();
        let good = entry(3, 0.5);
        let text = [&old, &other, &good]
            .iter()
            .map(|e| serde_json::to_string(e).unwrap())
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(dir.join(CACHE_FILE), text).unwrap();
        let cache = PlanCache::open(&dir, "K20X", "Double");
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup_exact(3).is_some());
        assert_eq!(cache.warnings.len(), 2);
        assert!(cache.warnings[0].reason.contains("version"));
        assert!(cache.warnings[1].reason.contains("K40"));
    }

    #[test]
    fn malformed_plans_are_rejected() {
        let dir = tmpdir("malformed");
        let mut bad = entry(1, 0.5);
        bad.groups = vec![vec![0, 7], vec![1, 2]]; // member 7 out of range
        let mut dup = entry(2, 0.5);
        dup.groups = vec![vec![0, 1], vec![1, 2]]; // kernel 1 twice
        let mut nan = entry(3, f64::NAN);
        nan.groups = vec![vec![0], vec![1], vec![2]];
        let text = [&bad, &dup, &nan]
            .iter()
            .map(|e| serde_json::to_string(e).unwrap())
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(dir.join(CACHE_FILE), text).unwrap();
        let cache = PlanCache::open(&dir, "K20X", "Double");
        assert!(cache.is_empty());
        assert_eq!(cache.warnings.len(), 3);
    }

    #[test]
    fn concurrent_appends_never_interleave_lines() {
        // Eight threads, each with its *own* PlanCache instance on the
        // same directory (the daemon's worker pool shape), hammering
        // inserts of distinct fingerprints. Every line must come back
        // parseable: a reload sees all entries and zero warnings.
        let dir = tmpdir("hammer");
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 25;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let dir = dir.clone();
                s.spawn(move || {
                    let mut cache = PlanCache::open(&dir, "K20X", "Double");
                    for i in 0..PER_THREAD {
                        cache.insert(entry(1 + t * PER_THREAD + i, 0.5)).unwrap();
                    }
                });
            }
        });
        let reloaded = PlanCache::open(&dir, "K20X", "Double");
        assert_eq!(
            reloaded.warnings,
            Vec::new(),
            "concurrent appends produced corrupt lines"
        );
        assert_eq!(reloaded.len() as u64, THREADS * PER_THREAD);
    }

    #[test]
    fn rewrite_preserves_entries_it_does_not_own() {
        // Two device-scoped views of one file: improving an entry in the
        // K20X view triggers a rewrite, which must not drop the K40
        // entry (or a same-device entry appended by another instance
        // after our load).
        let dir = tmpdir("foreign");
        let mut k20x = PlanCache::open(&dir, "K20X", "Double");
        k20x.insert(entry(1, 0.5)).unwrap();
        let mut k40 = PlanCache::open(&dir, "K40", "Double");
        let mut e40 = entry(7, 0.4);
        e40.gpu = "K40".into();
        k40.insert(e40).unwrap();
        let mut late = PlanCache::open(&dir, "K20X", "Double");
        late.insert(entry(9, 0.6)).unwrap(); // invisible to `k20x`
        k20x.insert(entry(1, 0.3)).unwrap(); // improvement: rewrites

        let r20 = PlanCache::open(&dir, "K20X", "Double");
        assert_eq!(r20.lookup_exact(1).unwrap().objective, 0.3);
        assert!(r20.lookup_exact(9).is_some(), "late append lost in rewrite");
        let r40 = PlanCache::open(&dir, "K40", "Double");
        assert!(
            r40.lookup_exact(7).is_some(),
            "foreign device lost in rewrite"
        );
    }

    #[test]
    fn near_lookup_ranks_by_signature_overlap() {
        let dir = tmpdir("near");
        let mut cache = PlanCache::open(&dir, "K20X", "Double");
        let mut close = entry(1, 0.5);
        close.kernel_sigs = vec![10, 20, 99];
        let mut far = entry(2, 0.5);
        far.kernel_sigs = vec![98, 97, 99];
        cache.insert(close).unwrap();
        cache.insert(far).unwrap();

        let (hit, ov) = cache.lookup_near(42, &[10, 20, 30], 0.3).unwrap();
        assert_eq!(hit.fingerprint, 1);
        assert!((ov - 2.0 / 3.0).abs() < 1e-12);
        // The exact fingerprint is excluded from near lookup.
        assert!(cache.lookup_near(1, &[10, 20, 99], 0.99).is_none());
        // Below the threshold nothing matches.
        assert!(cache.lookup_near(42, &[1, 2, 3], 0.3).is_none());
    }
}
