//! Memoized objective evaluation shared by all solvers.
//!
//! The paper's key scalability lever is a cheap objective (§IV): projecting
//! a candidate new kernel must not require code generation. On top of that
//! we memoize per-group results — HGGA populations re-evaluate the same
//! groups constantly (good groups survive crossover by design), so the
//! effective cost per *plan* evaluation collapses to a few hash lookups.
//!
//! Active-constraint pruning (§III-C) falls out of
//! [`kfuse_core::plan::PlanContext::check_group`]: capacity checks run only
//! for groups that actually stage pivots, and the first violated constraint
//! short-circuits the rest.

use kfuse_core::fuse::condensation_order;
use kfuse_core::model::PerfModel;
use kfuse_core::plan::{FusionPlan, PlanContext};
use kfuse_ir::KernelId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Result of evaluating one group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupEval {
    /// Projected runtime of the group's new kernel, or [`f64::INFINITY`]
    /// if any constraint is violated (incl. profitability 1.1).
    pub time_s: f64,
}

impl GroupEval {
    /// True if the group satisfies every constraint.
    pub fn feasible(&self) -> bool {
        self.time_s.is_finite()
    }
}

/// Shared, thread-safe objective evaluator.
pub struct Evaluator<'a> {
    /// Planning context (metadata + graphs).
    pub ctx: &'a PlanContext,
    /// The projection model used as objective (Eq. 1).
    pub model: &'a dyn PerfModel,
    memo: RwLock<HashMap<Vec<KernelId>, GroupEval>>,
    evaluations: AtomicU64,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator over `ctx` and `model`.
    pub fn new(ctx: &'a PlanContext, model: &'a dyn PerfModel) -> Self {
        Evaluator {
            ctx,
            model,
            memo: RwLock::new(HashMap::new()),
            evaluations: AtomicU64::new(0),
        }
    }

    /// Number of *distinct* objective evaluations performed (memo misses).
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Evaluate one group (memoized). `group` need not be sorted.
    pub fn group(&self, group: &[KernelId]) -> GroupEval {
        let mut key = group.to_vec();
        key.sort_unstable();
        if let Some(hit) = self.memo.read().get(&key) {
            return *hit;
        }
        let eval = self.compute(&key);
        self.memo.write().insert(key, eval);
        eval
    }

    fn compute(&self, group: &[KernelId]) -> GroupEval {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let spec = match self.ctx.check_group(group, 0) {
            Ok(s) => s,
            Err(_) => {
                return GroupEval {
                    time_s: f64::INFINITY,
                }
            }
        };
        let t = self.model.project(&self.ctx.info, &spec);
        if group.len() >= 2 {
            // Constraint 1.1: profitability.
            let original = self.ctx.info.original_sum(group);
            if t >= original || t.is_nan() {
                return GroupEval {
                    time_s: f64::INFINITY,
                };
            }
        }
        GroupEval { time_s: t }
    }

    /// Evaluate a whole plan: sum of group times, or infinity if any group
    /// is infeasible or the plan's condensation has a cycle.
    pub fn plan(&self, plan: &FusionPlan) -> f64 {
        let mut total = 0.0;
        for g in &plan.groups {
            let e = self.group(g);
            if !e.feasible() {
                return f64::INFINITY;
            }
            total += e.time_s;
        }
        if plan.groups.iter().any(|g| g.len() >= 2)
            && condensation_order(plan, &self.ctx.exec).is_err()
        {
            return f64::INFINITY;
        }
        total
    }

    /// True if `group` satisfies every constraint.
    pub fn feasible(&self, group: &[KernelId]) -> bool {
        self.group(group).feasible()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfuse_core::model::ProposedModel;
    use kfuse_core::pipeline::prepare;
    use kfuse_gpu::{FpPrecision, GpuSpec};
    use kfuse_ir::builder::ProgramBuilder;
    use kfuse_ir::Expr;

    fn ctx() -> PlanContext {
        let mut pb = ProgramBuilder::new("p", [256, 128, 8]);
        let a = pb.array("A");
        let [b, c, d] = pb.arrays(["B", "C", "D"]);
        pb.kernel("k0").write(b, Expr::at(a) + Expr::lit(1.0)).build();
        pb.kernel("k1").write(c, Expr::at(a) * Expr::lit(2.0)).build();
        pb.kernel("k2").write(d, Expr::at(b) + Expr::at(c)).build();
        let p = pb.build();
        prepare(&p, &GpuSpec::k20x(), FpPrecision::Double).1
    }

    #[test]
    fn memoization_counts_distinct_groups_once() {
        let ctx = ctx();
        let model = ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        let g = vec![KernelId(0), KernelId(1)];
        let e1 = ev.group(&g);
        let e2 = ev.group(&[KernelId(1), KernelId(0)]); // order-insensitive
        assert_eq!(e1, e2);
        assert_eq!(ev.evaluations(), 1);
    }

    #[test]
    fn identity_plan_is_finite_and_equals_measured_sum() {
        let ctx = ctx();
        let model = ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        let plan = FusionPlan::identity(3);
        let t = ev.plan(&plan);
        let sum: f64 = ctx.info.kernels.iter().map(|k| k.runtime_s).sum();
        assert!((t - sum).abs() / sum < 1e-12);
    }

    #[test]
    fn profitable_merge_is_feasible_and_faster() {
        let ctx = ctx();
        let model = ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        let fused = FusionPlan::new(vec![
            vec![KernelId(0), KernelId(1), KernelId(2)],
        ]);
        let t_f = ev.plan(&fused);
        let t_i = ev.plan(&FusionPlan::identity(3));
        assert!(t_f.is_finite());
        assert!(t_f < t_i);
    }
}
