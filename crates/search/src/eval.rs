//! Memoized objective evaluation shared by all solvers.
//!
//! The paper's key scalability lever is a cheap objective (§IV): projecting
//! a candidate new kernel must not require code generation. On top of that
//! we memoize per-group results — HGGA populations re-evaluate the same
//! groups constantly (good groups survive crossover by design), so the
//! effective cost per *plan* evaluation collapses to a few hash lookups.
//!
//! The memo is engineered for the island-model solver, where many threads
//! hammer it concurrently:
//!
//! * **Sharding.** Groups hash to one of `SHARD_COUNT` independent
//!   `RwLock<HashMap>` shards by an order-insensitive 64-bit fingerprint,
//!   so writers on one shard never stall readers on another.
//! * **Allocation-free hit path.** The probe key is the group sorted into
//!   a stack buffer (heap fallback only beyond `STACK_KEY` members); a
//!   hit performs zero heap allocation. Entries are compared by their full
//!   sorted member list, so fingerprint collisions are correctness-neutral.
//! * **Singleton bypass.** Per-kernel baseline costs are precomputed into
//!   a dense array at construction; singleton groups never touch the memo
//!   or its locks at all.
//!
//! Active-constraint pruning (§III-C) falls out of
//! [`kfuse_core::plan::PlanContext::check_group`]: capacity checks run only
//! for groups that actually stage pivots, and the first violated constraint
//! short-circuits the rest. Plan evaluation likewise short-circuits: the
//! first infeasible group aborts before any condensation (acyclicity) work
//! is done, and the condensation check itself runs against thread-local
//! reusable scratch ([`kfuse_core::fuse::CondensationScratch`]).

use kfuse_core::batch::{score_into, score_scalar, BatchScratch, BatchStats, CandidateBatch};
use kfuse_core::fuse::{condensation_order_with, CondensationScratch};
use kfuse_core::model::PerfModel;
use kfuse_core::plan::{FusionPlan, PlanContext};
use kfuse_core::synth::SynthScratch;
use kfuse_ir::KernelId;
use kfuse_obs::{
    ratio, worker_track, Counter, MetricsRegistry, MetricsSnapshot, ObsHandle, SpanId,
};
use parking_lot::RwLock;
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::time::{Duration, Instant};

/// Number of memo shards. A power of two so the shard index is a mask of
/// the fingerprint; 16 keeps contention negligible for the island counts
/// that make sense on one host while wasting little memory on small runs.
const SHARD_COUNT: usize = 16;

/// Largest group whose probe key is sorted on the stack.
const STACK_KEY: usize = 32;

/// Result of evaluating one group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupEval {
    /// Projected runtime of the group's new kernel, or [`f64::INFINITY`]
    /// if any constraint is violated (incl. profitability 1.1).
    pub time_s: f64,
}

impl GroupEval {
    /// True if the group satisfies every constraint.
    pub fn feasible(&self) -> bool {
        self.time_s.is_finite()
    }
}

/// Identity hasher for the shard maps: the group fingerprint is already
/// splitmix64-mixed, so re-hashing it through SipHash would only burn
/// cycles on the hit path.
#[derive(Default)]
struct FingerprintHasher(u64);

impl Hasher for FingerprintHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("shard keys are hashed via write_u64 only");
    }
}

/// One memo shard: fingerprint → entries with that fingerprint. The inner
/// list handles fingerprint collisions exactly (compared by sorted member
/// list); in practice it holds a single entry.
type Shard = HashMap<u64, Vec<(Box<[KernelId]>, GroupEval)>, BuildHasherDefault<FingerprintHasher>>;

thread_local! {
    static CONDENSATION_SCRATCH: RefCell<CondensationScratch> =
        RefCell::new(CondensationScratch::new());
    /// Fallback synthesis scratch for callers without their own (tests,
    /// one-off probes). Solver hot loops pass per-thread scratch through
    /// [`Evaluator::group_with`] instead.
    static SYNTH_SCRATCH: RefCell<SynthScratch> = RefCell::new(SynthScratch::new());
}

/// Shared, thread-safe objective evaluator.
///
/// All counters live in an owned [`MetricsRegistry`] (the `kfuse-obs`
/// taxonomy); the accessor methods below are derived views over it, and
/// solvers snapshot it into their [`kfuse_core::pipeline::SolveOutcome`].
pub struct Evaluator<'a> {
    /// Planning context (metadata + graphs).
    pub ctx: &'a PlanContext,
    /// The projection model used as objective (Eq. 1).
    pub model: &'a dyn PerfModel,
    shards: Vec<RwLock<Shard>>,
    /// Dense per-kernel baseline: `baseline[k]` is the singleton eval of
    /// kernel `k`, precomputed so singleton groups bypass the memo.
    baseline: Vec<GroupEval>,
    metrics: MetricsRegistry,
    obs: ObsHandle<'a>,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator over `ctx` and `model` (tracing disabled).
    pub fn new(ctx: &'a PlanContext, model: &'a dyn PerfModel) -> Self {
        Self::observed(ctx, model, ObsHandle::disabled())
    }

    /// [`Self::new`] with a tracing handle: memo misses and synthesis emit
    /// spans on the calling worker's track. A disabled handle costs one
    /// branch on the miss path and nothing on the hit path.
    pub fn observed(ctx: &'a PlanContext, model: &'a dyn PerfModel, obs: ObsHandle<'a>) -> Self {
        let mut scratch = SynthScratch::new();
        let baseline = (0..ctx.n_kernels())
            .map(|i| compute_with(ctx, model, &[KernelId(i as u32)], &mut scratch).0)
            .collect();
        Evaluator {
            ctx,
            model,
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            baseline,
            metrics: MetricsRegistry::new(),
            obs,
        }
    }

    /// The metrics registry this evaluator accumulates into. Solvers add
    /// their own counters (generations, migrations, …) here so one
    /// snapshot captures the whole run.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The tracing handle this evaluator records through.
    pub fn obs(&self) -> ObsHandle<'a> {
        self.obs
    }

    /// Point-in-time copy of all accumulated metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Number of *distinct* multi-member objective evaluations performed
    /// (memo misses). Singleton baselines are precomputed at construction
    /// and not counted.
    pub fn evaluations(&self) -> u64 {
        self.metrics.get(Counter::MemoMisses)
    }

    /// Number of multi-member memo probes (hits + misses). Singleton
    /// lookups resolve through the dense baseline and are not counted.
    pub fn probes(&self) -> u64 {
        self.metrics.get(Counter::MemoProbes)
    }

    /// Fraction of multi-member memo probes served from the memo,
    /// `(probes - misses) / probes`; 0 when nothing has been probed yet.
    pub fn hit_rate(&self) -> f64 {
        let probes = self.probes();
        ratio(probes.saturating_sub(self.evaluations()), probes)
    }

    /// Fraction of multi-member memo probes that missed and paid the
    /// synthesis + projection cost, `misses / probes`; 0 before any probe.
    pub fn miss_rate(&self) -> f64 {
        ratio(self.evaluations(), self.probes())
    }

    /// Average number of candidate lanes occupied per batched scoring
    /// sweep, `BatchLanesFilled / BatchesScored`: up to
    /// [`kfuse_core::batch::LANES`] with the `batch` feature, exactly 1
    /// under the scalar fallback, 0 while nothing has been batch-scored.
    pub fn avg_batch_fill(&self) -> f64 {
        ratio(
            self.metrics.get(Counter::BatchLanesFilled),
            self.metrics.get(Counter::BatchesScored),
        )
    }

    /// Total wall-clock nanoseconds spent on the memo-miss path (group
    /// synthesis + projection + insert), summed over all threads.
    pub fn miss_ns(&self) -> u64 {
        self.metrics.get(Counter::MissNs)
    }

    /// Nanoseconds of [`Self::miss_ns`] spent inside group synthesis
    /// proper (`synthesize_into`), summed over all threads.
    pub fn synth_ns(&self) -> u64 {
        self.metrics.get(Counter::SynthNs)
    }

    /// Number of plan-level condensation (acyclicity) checks performed.
    /// Plans rejected on an infeasible group never reach this check.
    pub fn condensation_checks(&self) -> u64 {
        self.metrics.get(Counter::CondensationChecks)
    }

    /// Record an acyclicity check performed outside [`Evaluator::plan`] —
    /// the chromosome's incremental Kahn pass and the reference repair's
    /// from-scratch condensation both report through this so the
    /// per-variant counts in the scaling study are comparable.
    pub(crate) fn count_condensation(&self) {
        self.metrics.incr(Counter::CondensationChecks);
    }

    /// Add `v` to a solver-side counter (generations, finalizes, …): the
    /// GA loops and chromosome machinery report through the evaluator so
    /// the whole run lands in one registry.
    pub(crate) fn count(&self, c: Counter, v: u64) {
        self.metrics.add(c, v);
    }

    /// The precomputed singleton eval of kernel `k` — the delta path's
    /// repair step resolves lone orphans through this without touching the
    /// memo or re-sorting a one-element key.
    pub fn singleton(&self, k: KernelId) -> GroupEval {
        self.baseline[k.index()]
    }

    /// Evaluate one group (memoized). `group` need not be sorted. Misses
    /// synthesize into a thread-local scratch; hot loops that already own
    /// scratch should call [`Self::group_with`].
    pub fn group(&self, group: &[KernelId]) -> GroupEval {
        self.group_inner(group, None)
    }

    /// [`Self::group`] with caller-owned synthesis scratch, skipping the
    /// thread-local borrow on the miss path.
    pub fn group_with(&self, group: &[KernelId], scratch: &mut SynthScratch) -> GroupEval {
        self.group_inner(group, Some(scratch))
    }

    /// The raw objective with no memo interaction and no stat counters:
    /// structure checks, SoA synthesis into `scratch`, view projection and
    /// the profitability gate. This is the allocation-free unit the
    /// `search_scaling` miss-path benchmark times.
    pub fn evaluate_uncached(&self, group: &[KernelId], scratch: &mut SynthScratch) -> GroupEval {
        compute_with(self.ctx, self.model, group, scratch).0
    }

    fn group_inner(&self, group: &[KernelId], scratch: Option<&mut SynthScratch>) -> GroupEval {
        if let [k] = group {
            return self.baseline[k.index()];
        }
        self.metrics.incr(Counter::MemoProbes);
        with_sorted_key(group, |key| {
            let fp = fingerprint(key);
            let shard = &self.shards[(fp & (SHARD_COUNT as u64 - 1)) as usize];
            if let Some(bucket) = shard.read().get(&fp) {
                if let Some((_, hit)) = bucket.iter().find(|(k, _)| &**k == key) {
                    return *hit;
                }
            }
            self.metrics.incr(Counter::MemoMisses);
            let t0 = Instant::now();
            let (eval, synth_ns) = match scratch {
                Some(s) => compute_with(self.ctx, self.model, key, s),
                None => SYNTH_SCRATCH
                    .with(|s| compute_with(self.ctx, self.model, key, &mut s.borrow_mut())),
            };
            self.metrics.add(Counter::SynthNs, synth_ns);
            let mut w = shard.write();
            let bucket = w.entry(fp).or_default();
            // A racing thread may have inserted while we computed.
            if let Some((_, hit)) = bucket.iter().find(|(k, _)| &**k == key) {
                return *hit;
            }
            bucket.push((key.to_vec().into_boxed_slice(), eval));
            drop(w);
            let miss = t0.elapsed();
            self.metrics.add(Counter::MissNs, miss.as_nanos() as u64);
            if self.obs.is_enabled() {
                // Reuse the timestamps the miss path measures anyway: the
                // synthesis span is nested at the front of the miss span.
                let track = worker_track();
                let len = key.len() as u64;
                self.obs
                    .record_span(SpanId::MemoMiss, track, t0, miss, [len, 0]);
                self.obs.record_span(
                    SpanId::Synthesis,
                    track,
                    t0,
                    Duration::from_nanos(synth_ns),
                    [len, 0],
                );
            }
            eval
        })
    }

    /// Evaluate a whole plan: sum of group times, or infinity if any group
    /// is infeasible or the plan's condensation has a cycle. Returns on the
    /// first infeasible group without touching the condensation machinery.
    pub fn plan(&self, plan: &FusionPlan) -> f64 {
        let mut total = 0.0;
        let mut any_multi = false;
        for g in &plan.groups {
            let e = self.group(g);
            if !e.feasible() {
                return f64::INFINITY;
            }
            any_multi |= g.len() >= 2;
            total += e.time_s;
        }
        if any_multi {
            self.metrics.incr(Counter::CondensationChecks);
            let acyclic = CONDENSATION_SCRATCH.with(|s| {
                condensation_order_with(plan, &self.ctx.exec, &mut s.borrow_mut()).is_ok()
            });
            if !acyclic {
                return f64::INFINITY;
            }
        }
        total
    }

    /// True if `group` satisfies every constraint.
    pub fn feasible(&self, group: &[KernelId]) -> bool {
        self.group(group).feasible()
    }
}

/// Reusable state for [`Evaluator::group_batch`]: a candidate queue, the
/// distinct-miss queue behind it, and the lane-batched scoring scratch.
/// One per solver thread; every buffer is retained across calls, so
/// steady-state probing allocates nothing.
pub struct BatchProbe {
    /// Candidates exactly as enqueued by the caller.
    cands: CandidateBatch,
    /// Distinct memo misses (canonically sorted keys) awaiting scoring.
    miss: CandidateBatch,
    /// Fingerprint of each entry in `miss` (parallel array).
    miss_fp: Vec<u64>,
    /// `(candidate index, miss index)` pairs resolved after the flush.
    pending: Vec<(u32, u32)>,
    /// Scored seconds per miss (parallel to `miss`).
    times: Vec<f64>,
    /// Lane-batched synthesis + projection scratch.
    core: BatchScratch,
}

impl Default for BatchProbe {
    fn default() -> Self {
        BatchProbe::new()
    }
}

impl BatchProbe {
    /// An empty probe; its buffers size themselves on first use.
    pub fn new() -> Self {
        BatchProbe {
            cands: CandidateBatch::new(),
            miss: CandidateBatch::new(),
            miss_fp: Vec::new(),
            pending: Vec::new(),
            times: Vec::new(),
            core: BatchScratch::new(),
        }
    }

    /// Remove every queued candidate, keeping capacity.
    pub fn clear(&mut self) {
        self.cands.clear();
    }

    /// Enqueue a complete candidate; returns its index.
    pub fn push(&mut self, group: &[KernelId]) -> usize {
        self.cands.push(group)
    }

    /// Append one member to the candidate currently being built (close it
    /// with [`BatchProbe::seal`]).
    pub fn push_member(&mut self, k: KernelId) {
        self.cands.push_member(k);
    }

    /// Append members to the candidate currently being built.
    pub fn extend_members(&mut self, ks: &[KernelId]) {
        self.cands.extend_members(ks);
    }

    /// Close the candidate built member-by-member; returns its index.
    pub fn seal(&mut self) -> usize {
        self.cands.seal()
    }

    /// Number of candidates queued.
    pub fn len(&self) -> usize {
        self.cands.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.cands.is_empty()
    }

    /// The members of queued candidate `i`, exactly as enqueued.
    pub fn group(&self, i: usize) -> &[KernelId] {
        self.cands.group(i)
    }
}

impl<'a> Evaluator<'a> {
    /// Evaluate every candidate queued in `probe` (memoized), leaving
    /// `out[i]` as the eval of candidate `i`. Equivalent to calling
    /// [`Self::group`] per candidate — bitwise-identical results — but
    /// memo misses are gathered and scored lane-per-candidate through
    /// [`kfuse_core::batch::score_into`], so a probe batch pays the
    /// synthesis + projection cost once per [`kfuse_core::batch::LANES`]
    /// distinct misses instead of once per miss.
    ///
    /// The queue survives the call — callers replay scored candidates by
    /// index (`probe.group(i)` / `out[i]`) — and is reset by the next
    /// [`BatchProbe::clear`].
    pub fn group_batch(&self, probe: &mut BatchProbe, out: &mut Vec<GroupEval>) {
        let BatchProbe {
            cands,
            miss,
            miss_fp,
            pending,
            times,
            core,
        } = probe;
        miss.clear();
        miss_fp.clear();
        pending.clear();
        out.clear();
        let mut multi_probes = 0u64;
        for i in 0..cands.len() {
            let group = cands.group(i);
            if let [k] = group {
                out.push(self.baseline[k.index()]);
                continue;
            }
            multi_probes += 1;
            let eval = with_sorted_key(group, |key| {
                let fp = fingerprint(key);
                let shard = &self.shards[(fp & (SHARD_COUNT as u64 - 1)) as usize];
                if let Some(bucket) = shard.read().get(&fp) {
                    if let Some((_, hit)) = bucket.iter().find(|(k, _)| &**k == key) {
                        return *hit;
                    }
                }
                // Distinct miss, or an in-batch duplicate of one already
                // queued; either way the candidate resolves after the
                // flush. NaN is a placeholder, never returned.
                let j = (0..miss.len())
                    .find(|&j| miss_fp[j] == fp && miss.group(j) == key)
                    .unwrap_or_else(|| {
                        miss_fp.push(fp);
                        miss.push(key)
                    });
                pending.push((i as u32, j as u32));
                GroupEval { time_s: f64::NAN }
            });
            out.push(eval);
        }
        self.metrics.add(Counter::MemoProbes, multi_probes);
        if !miss.is_empty() {
            let t0 = Instant::now();
            let stats = score_into(self.ctx, self.model, miss, core, times);
            self.metrics.add(Counter::MemoMisses, miss.len() as u64);
            self.metrics.add(Counter::SynthNs, stats.synth_ns);
            self.metrics.add(Counter::BatchesScored, stats.batches);
            self.metrics.add(Counter::BatchLanesFilled, stats.lanes);
            // Publish in queue order so single-threaded runs populate the
            // memo deterministically; a racing thread's entry wins (the
            // values are bitwise equal — same pure function — so this
            // only avoids duplicate entries).
            for j in 0..miss.len() {
                let key = miss.group(j);
                let fp = miss_fp[j];
                let shard = &self.shards[(fp & (SHARD_COUNT as u64 - 1)) as usize];
                let mut w = shard.write();
                let bucket = w.entry(fp).or_default();
                if let Some((_, hit)) = bucket.iter().find(|(k, _)| &**k == key) {
                    times[j] = hit.time_s;
                } else {
                    bucket.push((
                        key.to_vec().into_boxed_slice(),
                        GroupEval { time_s: times[j] },
                    ));
                }
            }
            let dur = t0.elapsed();
            self.metrics.add(Counter::MissNs, dur.as_nanos() as u64);
            if self.obs.is_enabled() {
                self.obs.record_span(
                    SpanId::BatchScore,
                    worker_track(),
                    t0,
                    dur,
                    [miss.len() as u64, stats.lanes],
                );
            }
            for &(i, j) in pending.iter() {
                out[i as usize] = GroupEval {
                    time_s: times[j as usize],
                };
            }
        }
    }

    /// The raw batched objective with no memo interaction and no stat
    /// counters: every candidate of `batch` scored through the
    /// lane-batched path (or the scalar fallback when the `batch` feature
    /// is off) into `out`. This is the allocation-free unit the
    /// `search_scaling` batch miss-path benchmark times.
    pub fn evaluate_uncached_batch(
        &self,
        batch: &CandidateBatch,
        scratch: &mut BatchScratch,
        out: &mut Vec<f64>,
    ) -> BatchStats {
        score_into(self.ctx, self.model, batch, scratch, out)
    }
}

/// Run `f` on `group` sorted into canonical order, without allocating for
/// groups up to [`STACK_KEY`] members.
fn with_sorted_key<R>(group: &[KernelId], f: impl FnOnce(&[KernelId]) -> R) -> R {
    if group.len() <= STACK_KEY {
        let mut buf = [KernelId(0); STACK_KEY];
        let key = &mut buf[..group.len()];
        key.copy_from_slice(group);
        key.sort_unstable();
        f(key)
    } else {
        let mut key = group.to_vec();
        key.sort_unstable();
        f(&key)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Order-insensitive 64-bit group fingerprint: each member id is expanded
/// through splitmix64 and the results combined with a commutative sum, so
/// any permutation of the same members produces the same fingerprint.
/// Collisions are tolerated (entries are verified member-by-member).
fn fingerprint(group: &[KernelId]) -> u64 {
    let mut acc = (group.len() as u64).wrapping_mul(0xa076_1d64_78bd_642f);
    for &k in group {
        acc = acc.wrapping_add(splitmix64(k.0 as u64));
    }
    acc
}

/// The raw (unmemoized) group objective over the allocation-free SoA path:
/// structure checks, synthesis into `scratch`, limit checks on the view,
/// view projection, profitability. Returns the eval plus the nanoseconds
/// spent inside `synthesize_into`. Delegates to
/// [`kfuse_core::batch::score_scalar`] — the single scalar definition the
/// lane-batched path is proven bitwise-identical against.
fn compute_with(
    ctx: &PlanContext,
    model: &dyn PerfModel,
    group: &[KernelId],
    scratch: &mut SynthScratch,
) -> (GroupEval, u64) {
    let (t, synth_ns) = score_scalar(ctx, model, group, scratch);
    (GroupEval { time_s: t }, synth_ns)
}

/// The raw (unmemoized) group objective over the materializing legacy
/// path, retained for [`legacy::LegacyEvaluator`] and as the comparison
/// baseline in the miss-path benchmark.
fn compute_group(ctx: &PlanContext, model: &dyn PerfModel, group: &[KernelId]) -> GroupEval {
    let spec = match ctx.check_group(group, 0) {
        Ok(s) => s,
        Err(_) => {
            return GroupEval {
                time_s: f64::INFINITY,
            }
        }
    };
    let t = model.project(&ctx.info, &spec);
    if group.len() >= 2 {
        // Constraint 1.1: profitability.
        let original = ctx.info.original_sum(group);
        if t >= original || t.is_nan() {
            return GroupEval {
                time_s: f64::INFINITY,
            };
        }
    }
    GroupEval { time_s: t }
}

/// The pre-sharding evaluator, retained verbatim as the baseline for the
/// `search_scaling` experiment (evaluations/sec before vs. after the memo
/// overhaul). Not used by any solver.
pub mod legacy {
    use super::{GroupEval, PerfModel};
    use kfuse_core::fuse::condensation_order;
    use kfuse_core::plan::{FusionPlan, PlanContext};
    use kfuse_ir::KernelId;
    use parking_lot::RwLock;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Single global `RwLock<HashMap>` memo with an allocating key per
    /// lookup — the evaluator as it stood before the sharded rework.
    pub struct LegacyEvaluator<'a> {
        /// Planning context (metadata + graphs).
        pub ctx: &'a PlanContext,
        /// The projection model used as objective (Eq. 1).
        pub model: &'a dyn PerfModel,
        memo: RwLock<HashMap<Vec<KernelId>, GroupEval>>,
        evaluations: AtomicU64,
        probes: AtomicU64,
    }

    impl<'a> LegacyEvaluator<'a> {
        /// Create an evaluator over `ctx` and `model`.
        pub fn new(ctx: &'a PlanContext, model: &'a dyn PerfModel) -> Self {
            LegacyEvaluator {
                ctx,
                model,
                memo: RwLock::new(HashMap::new()),
                evaluations: AtomicU64::new(0),
                probes: AtomicU64::new(0),
            }
        }

        /// Number of distinct objective evaluations performed.
        pub fn evaluations(&self) -> u64 {
            self.evaluations.load(Ordering::Relaxed)
        }

        /// Number of memo probes issued (the legacy memo probes for
        /// singletons too, unlike the sharded evaluator's baseline
        /// bypass).
        pub fn probes(&self) -> u64 {
            self.probes.load(Ordering::Relaxed)
        }

        /// Fraction of probes served from the memo. Normalized through
        /// [`kfuse_obs::ratio`], so a fresh evaluator reports `0.0` —
        /// matching the sharded [`super::Evaluator::hit_rate`] instead of
        /// the `NaN` a bare `hits / probes` division would yield.
        pub fn hit_rate(&self) -> f64 {
            let probes = self.probes();
            kfuse_obs::ratio(probes.saturating_sub(self.evaluations()), probes)
        }

        /// Evaluate one group (memoized).
        pub fn group(&self, group: &[KernelId]) -> GroupEval {
            self.probes.fetch_add(1, Ordering::Relaxed);
            let mut key = group.to_vec();
            key.sort_unstable();
            if let Some(hit) = self.memo.read().get(&key) {
                return *hit;
            }
            self.evaluations.fetch_add(1, Ordering::Relaxed);
            let eval = super::compute_group(self.ctx, self.model, &key);
            self.memo.write().insert(key, eval);
            eval
        }

        /// Evaluate a whole plan.
        pub fn plan(&self, plan: &FusionPlan) -> f64 {
            let mut total = 0.0;
            for g in &plan.groups {
                let e = self.group(g);
                if !e.feasible() {
                    return f64::INFINITY;
                }
                total += e.time_s;
            }
            if plan.groups.iter().any(|g| g.len() >= 2)
                && condensation_order(plan, &self.ctx.exec).is_err()
            {
                return f64::INFINITY;
            }
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfuse_core::model::ProposedModel;
    use kfuse_core::pipeline::prepare;
    use kfuse_gpu::{FpPrecision, GpuSpec};
    use kfuse_ir::builder::ProgramBuilder;
    use kfuse_ir::Expr;

    fn ctx() -> PlanContext {
        let mut pb = ProgramBuilder::new("p", [256, 128, 8]);
        let a = pb.array("A");
        let [b, c, d] = pb.arrays(["B", "C", "D"]);
        pb.kernel("k0")
            .write(b, Expr::at(a) + Expr::lit(1.0))
            .build();
        pb.kernel("k1")
            .write(c, Expr::at(a) * Expr::lit(2.0))
            .build();
        pb.kernel("k2").write(d, Expr::at(b) + Expr::at(c)).build();
        let p = pb.build();
        prepare(&p, &GpuSpec::k20x(), FpPrecision::Double).1
    }

    /// `ctx()` plus a fourth kernel sharing no data with k0 (kinship 0).
    fn ctx_with_stranger() -> PlanContext {
        let mut pb = ProgramBuilder::new("p", [256, 128, 8]);
        let a = pb.array("A");
        let [b, c, d] = pb.arrays(["B", "C", "D"]);
        let [x, y] = pb.arrays(["X", "Y"]);
        pb.kernel("k0")
            .write(b, Expr::at(a) + Expr::lit(1.0))
            .build();
        pb.kernel("k1")
            .write(c, Expr::at(a) * Expr::lit(2.0))
            .build();
        pb.kernel("k2").write(d, Expr::at(b) + Expr::at(c)).build();
        pb.kernel("k3")
            .write(y, Expr::at(x) * Expr::lit(0.5))
            .build();
        let p = pb.build();
        prepare(&p, &GpuSpec::k20x(), FpPrecision::Double).1
    }

    #[test]
    fn memoization_counts_distinct_groups_once() {
        let ctx = ctx();
        let model = ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        let g = vec![KernelId(0), KernelId(1)];
        let e1 = ev.group(&g);
        let e2 = ev.group(&[KernelId(1), KernelId(0)]); // order-insensitive
        assert_eq!(e1, e2);
        assert_eq!(ev.evaluations(), 1);
    }

    #[test]
    fn singletons_bypass_the_memo() {
        let ctx = ctx();
        let model = ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        for k in 0..3 {
            let e = ev.group(&[KernelId(k)]);
            assert!(e.feasible());
        }
        // Baseline lookups are not memo misses.
        assert_eq!(ev.evaluations(), 0);
    }

    #[test]
    fn identity_plan_is_finite_and_equals_measured_sum() {
        let ctx = ctx();
        let model = ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        let plan = FusionPlan::identity(3);
        let t = ev.plan(&plan);
        let sum: f64 = ctx.info.kernels.iter().map(|k| k.runtime_s).sum();
        assert!((t - sum).abs() / sum < 1e-12);
    }

    #[test]
    fn profitable_merge_is_feasible_and_faster() {
        let ctx = ctx();
        let model = ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        let fused = FusionPlan::new(vec![vec![KernelId(0), KernelId(1), KernelId(2)]]);
        let t_f = ev.plan(&fused);
        let t_i = ev.plan(&FusionPlan::identity(3));
        assert!(t_f.is_finite());
        assert!(t_f < t_i);
    }

    #[test]
    fn infeasible_plan_short_circuits_before_condensation() {
        let ctx = ctx_with_stranger();
        let model = ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        // {k0, k3} share no arrays → kinship violation → infeasible group.
        let bad = FusionPlan::new(vec![
            vec![KernelId(0), KernelId(3)],
            vec![KernelId(1)],
            vec![KernelId(2)],
        ]);
        assert!(ev.plan(&bad).is_infinite());
        assert_eq!(
            ev.condensation_checks(),
            0,
            "infeasible plan must not reach the condensation check"
        );
        // A feasible multi-member plan does run (exactly) one check.
        let good = FusionPlan::new(vec![
            vec![KernelId(0), KernelId(1), KernelId(2)],
            vec![KernelId(3)],
        ]);
        assert!(ev.plan(&good).is_finite());
        assert_eq!(ev.condensation_checks(), 1);
    }

    #[test]
    fn matches_legacy_evaluator() {
        let ctx = ctx_with_stranger();
        let model = ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        let old = legacy::LegacyEvaluator::new(&ctx, &model);
        let plans = [
            FusionPlan::identity(4),
            FusionPlan::new(vec![
                vec![KernelId(0), KernelId(1), KernelId(2)],
                vec![KernelId(3)],
            ]),
            FusionPlan::new(vec![
                vec![KernelId(2), KernelId(1)],
                vec![KernelId(0)],
                vec![KernelId(3)],
            ]),
            FusionPlan::new(vec![
                vec![KernelId(0), KernelId(3)],
                vec![KernelId(1)],
                vec![KernelId(2)],
            ]),
        ];
        for plan in &plans {
            let a = ev.plan(plan);
            let b = old.plan(plan);
            assert!(
                (a.is_infinite() && b.is_infinite()) || a == b,
                "sharded {a} vs legacy {b} for {plan:?}"
            );
        }
    }

    #[test]
    fn fingerprint_is_order_insensitive_and_length_aware() {
        let a = [KernelId(3), KernelId(7), KernelId(11)];
        let b = [KernelId(11), KernelId(3), KernelId(7)];
        assert_eq!(fingerprint(&a), fingerprint(&b));
        // {3} vs {3,3} style degeneracies differ by the length term.
        assert_ne!(
            fingerprint(&[KernelId(3)]),
            fingerprint(&[KernelId(3), KernelId(3)])
        );
    }

    #[test]
    fn large_groups_fall_back_to_heap_keys() {
        // A 40-kernel chain exercises the > STACK_KEY probe path;
        // feasibility of the mega-group is irrelevant to the memo logic.
        let mut pb = ProgramBuilder::new("chain", [256, 128, 8]);
        let mut prev = pb.array("A0");
        let mut kernels = Vec::new();
        for i in 0..40 {
            let next = pb.array(format!("A{}", i + 1));
            pb.kernel(format!("k{i}"))
                .write(next, Expr::at(prev) + Expr::lit(1.0))
                .build();
            kernels.push(KernelId(i as u32));
            prev = next;
        }
        let p = pb.build();
        let ctx = prepare(&p, &GpuSpec::k20x(), FpPrecision::Double).1;
        let model = ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        let e1 = ev.group(&kernels);
        let mut rev = kernels.clone();
        rev.reverse();
        let e2 = ev.group(&rev);
        assert_eq!(e1, e2);
        assert_eq!(ev.evaluations(), 1);
    }
}
