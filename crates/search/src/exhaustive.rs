//! Exact solver: exhaustive enumeration of set partitions.
//!
//! The deterministic method the paper uses to verify HGGA solution quality
//! on small test-suite benchmarks (§VI-C1, Fig. 5a). Enumerates restricted
//! growth strings (canonical set partitions), pruning assignments that mix
//! sharing-graph components (kinship can never be repaired by adding more
//! members), and evaluates complete partitions through the shared memoized
//! [`Evaluator`].
//!
//! Complexity is the Bell number B(n); the solver refuses programs beyond
//! [`ExhaustiveSolver::max_kernels`].

use crate::eval::Evaluator;
use kfuse_core::model::PerfModel;
use kfuse_core::pipeline::{SolveOutcome, SolveStats, Solver};
use kfuse_core::plan::{FusionPlan, PlanContext};
use kfuse_ir::KernelId;
use kfuse_obs::{Counter, ObsHandle, SpanId};
use std::time::Instant;

/// Exhaustive partition enumeration.
#[derive(Debug, Clone)]
pub struct ExhaustiveSolver {
    /// Refuse instances larger than this (Bell growth).
    pub max_kernels: usize,
}

impl Default for ExhaustiveSolver {
    fn default() -> Self {
        ExhaustiveSolver { max_kernels: 13 }
    }
}

impl Solver for ExhaustiveSolver {
    fn name(&self) -> &str {
        "exhaustive"
    }

    fn solve(&self, ctx: &PlanContext, model: &dyn PerfModel) -> SolveOutcome {
        self.solve_observed(ctx, model, ObsHandle::disabled())
    }

    fn solve_observed(
        &self,
        ctx: &PlanContext,
        model: &dyn PerfModel,
        obs: ObsHandle<'_>,
    ) -> SolveOutcome {
        let n = ctx.n_kernels();
        assert!(
            n <= self.max_kernels,
            "exhaustive search over {n} kernels exceeds the {} limit (Bell-number blowup)",
            self.max_kernels
        );
        let ev = Evaluator::observed(ctx, model, obs);
        let start = Instant::now();
        let mut solve_span = obs.span(SpanId::Solve);
        solve_span.set_arg(0, n as u64);

        // Restricted growth string enumeration.
        let mut assign = vec![0usize; n];
        let mut best_plan = FusionPlan::identity(n);
        let mut best_cost = ev.plan(&best_plan);
        ev.count(Counter::PartitionsScored, 1);

        {
            let mut enum_span = obs.span(SpanId::Enumeration);
            enum_span.set_arg(0, n as u64);
            enumerate(ctx, &ev, &mut assign, 0, 0, &mut best_plan, &mut best_cost);
        }

        let metrics = ev.snapshot();
        let stats = SolveStats {
            elapsed: start.elapsed(),
            time_to_best: start.elapsed(),
            ..SolveStats::from_metrics(&metrics)
        };
        SolveOutcome {
            plan: best_plan,
            objective: best_cost,
            stats,
            metrics,
        }
    }
}

fn enumerate(
    ctx: &PlanContext,
    ev: &Evaluator<'_>,
    assign: &mut Vec<usize>,
    i: usize,
    max_used: usize,
    best_plan: &mut FusionPlan,
    best_cost: &mut f64,
) {
    let n = assign.len();
    if i == n {
        let mut groups: Vec<Vec<KernelId>> = vec![Vec::new(); max_used];
        for (k, &g) in assign.iter().enumerate() {
            groups[g].push(KernelId(k as u32));
        }
        let plan = FusionPlan::new(groups);
        let cost = ev.plan(&plan);
        ev.count(Counter::PartitionsScored, 1);
        if cost < *best_cost {
            *best_cost = cost;
            *best_plan = plan;
        }
        return;
    }
    let ki = KernelId(i as u32);
    for g in 0..=max_used {
        // Sound pruning: mixing sharing components can never become
        // feasible (constraint 1.5 is monotone in group growth).
        if g < max_used {
            let first_in_g = assign[..i]
                .iter()
                .position(|&a| a == g)
                .expect("group g is non-empty");
            if ctx.share.component(KernelId(first_in_g as u32)) != ctx.share.component(ki) {
                continue;
            }
        }
        assign[i] = g;
        let new_max = max_used.max(g + 1);
        enumerate(ctx, ev, assign, i + 1, new_max, best_plan, best_cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfuse_core::model::ProposedModel;
    use kfuse_core::pipeline::prepare;
    use kfuse_gpu::{FpPrecision, GpuSpec};
    use kfuse_ir::builder::ProgramBuilder;
    use kfuse_ir::Expr;

    fn small_program(n_consumers: usize) -> kfuse_ir::Program {
        let mut pb = ProgramBuilder::new("p", [256, 128, 8]);
        let a = pb.array("A");
        for i in 0..n_consumers {
            let out = pb.array(format!("O{i}"));
            pb.kernel(format!("k{i}"))
                .write(out, Expr::at(a) + Expr::lit(i as f64))
                .build();
        }
        pb.build()
    }

    #[test]
    fn exhaustive_finds_the_all_fused_optimum() {
        // All kernels share A with no ordering constraints: the optimum is
        // fusing everything (if capacity allows, which it does for 4).
        let (_, ctx) = prepare(&small_program(4), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let out = ExhaustiveSolver::default().solve(&ctx, &model);
        assert!(out.objective.is_finite());
        assert_eq!(out.plan.groups.len(), 1, "plan {:?}", out.plan);
        assert_eq!(out.plan.groups[0].len(), 4);
    }

    #[test]
    fn exhaustive_is_a_lower_bound_for_other_solvers() {
        let (_, ctx) = prepare(&small_program(5), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let exact = ExhaustiveSolver::default().solve(&ctx, &model);
        let greedy = crate::GreedySolver.solve(&ctx, &model);
        assert!(exact.objective <= greedy.objective + 1e-15);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn refuses_oversized_instances() {
        let (_, ctx) = prepare(&small_program(14), &GpuSpec::k20x(), FpPrecision::Double);
        let model = ProposedModel::default();
        let _ = ExhaustiveSolver::default().solve(&ctx, &model);
    }
}
