//! Cross-solve reuse: cache-served plans, warm-started searches, and the
//! anytime `--budget-ms` mode.
//!
//! [`WarmSolver`] wraps the hierarchical solver with the persistent
//! [`PlanCache`]:
//!
//! - **exact hit** — the program's order-insensitive fingerprint matches a
//!   cached entry. The cached plan is rebuilt, re-validated through the
//!   independent `kfuse-verify` checker, re-scored, and served without any
//!   search. A plan that fails re-validation (cache corruption, model
//!   drift) silently degrades to the near-hit path.
//! - **near hit** — the nearest cached entry by kernel-signature overlap
//!   is *remapped* onto the current program (cached kernels matched to
//!   current kernels by local signature, the existing sub-program
//!   machinery's dense-renumbering convention) and injected as a
//!   warm-start seed; under the hierarchical path, regions whose
//!   sub-fingerprint is cached additionally skip their greedy floor.
//! - **miss** — a normal cold solve, whose result is inserted into the
//!   cache for next time.
//!
//! With a budget, the deadline threads through every generation and epoch
//! loop, and the result is floored at the greedy plan (programs up to
//! [`HggaHierSolver::GREEDY_FLOOR_LIMIT`]), so an arbitrarily small budget
//! still returns a plan no worse than the polynomial baseline.
//!
//! Without a cache directory and without a budget the wrapper passes
//! default [`SolveControls`] through, which is bit-for-bit the plain
//! hierarchical solve — cold-path determinism is untouched.

use crate::eval::Evaluator;
use crate::greedy::GreedySolver;
use crate::hgga::SolveControls;
use crate::partition::{partition_regions, HggaHierSolver};
use crate::plancache::{CacheEntry, PlanCache, CACHE_VERSION};
use kfuse_core::fingerprint::{
    kernel_colors, kernel_signatures, program_fingerprint_with, region_fingerprint,
};
use kfuse_core::model::PerfModel;
use kfuse_core::pipeline::{SolveOutcome, SolveStats, Solver};
use kfuse_core::plan::{FusionPlan, PlanContext};
use kfuse_ir::KernelId;
use kfuse_obs::{Counter, Gauge, MetricsRegistry, ObsHandle, SpanId};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// `cache_probe` span outcome codes (second span argument).
const PROBE_MISS: u64 = 0;
const PROBE_NEAR: u64 = 1;
const PROBE_EXACT: u64 = 2;

/// The cache-aware, budget-aware solver the CLI uses for `--cache-dir`
/// and `--budget-ms`.
///
/// ```
/// use kfuse_core::pipeline::{self, Solver};
/// use kfuse_core::model::ProposedModel;
/// use kfuse_gpu::{FpPrecision, GpuSpec};
/// use kfuse_ir::{builder::ProgramBuilder, expr::Expr};
/// use kfuse_search::{HggaHierSolver, WarmSolver};
///
/// let mut pb = ProgramBuilder::new("demo", [256, 128, 16]);
/// let (a, b, c) = (pb.array("A"), pb.array("B"), pb.array("C"));
/// pb.kernel("k0").write(b, Expr::at(a) + Expr::lit(1.0)).build();
/// pb.kernel("k1").write(c, Expr::at(a) * Expr::lit(2.0)).build();
/// let (_, ctx) = pipeline::prepare(&pb.build(), &GpuSpec::k20x(), FpPrecision::Double);
///
/// // No cache dir, no budget: bit-for-bit the plain hierarchical solve.
/// let warm = WarmSolver::new(HggaHierSolver::with_seed(17), None, None);
/// let out = warm.solve(&ctx, &ProposedModel::default());
/// assert!(out.objective.is_finite());
/// ```
///
/// With a cache directory the same call serves exact repeats without
/// search and warm-starts near repeats; the daemon threads a shared
/// in-memory cache through [`WarmSolver::solve_shared`] instead.
#[derive(Debug, Clone)]
pub struct WarmSolver {
    /// The solver that runs when the cache cannot answer outright.
    pub inner: HggaHierSolver,
    /// Cache directory (`plans.jsonl` inside it); `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Wall-clock budget for the whole solve; `None` runs to convergence.
    pub budget: Option<Duration>,
    /// Minimum kernel-signature overlap for a near hit (fraction of the
    /// larger program's kernels with signature-identical counterparts).
    pub min_overlap: f64,
}

impl WarmSolver {
    /// Wrap `inner` with a cache directory and/or budget.
    pub fn new(
        inner: HggaHierSolver,
        cache_dir: Option<PathBuf>,
        budget: Option<Duration>,
    ) -> Self {
        WarmSolver {
            inner,
            cache_dir,
            budget,
            min_overlap: 0.3,
        }
    }
}

impl Solver for WarmSolver {
    fn name(&self) -> &str {
        "hgga-warm"
    }

    fn solve(&self, ctx: &PlanContext, model: &dyn PerfModel) -> SolveOutcome {
        self.solve_observed(ctx, model, ObsHandle::disabled())
    }

    fn solve_observed(
        &self,
        ctx: &PlanContext,
        model: &dyn PerfModel,
        obs: ObsHandle<'_>,
    ) -> SolveOutcome {
        let cache = self.cache_dir.as_ref().map(|dir| {
            let c = PlanCache::open(
                dir,
                &ctx.info.gpu.name,
                &format!("{:?}", ctx.info.precision),
            );
            for w in &c.warnings {
                eprintln!("warning: {w}");
            }
            Mutex::new(c)
        });
        self.solve_shared(ctx, model, obs, cache.as_ref())
    }
}

/// Lock a shared cache, recovering from poisoning: cache mutations are
/// line-atomic on disk, so a panicked peer leaves nothing worth
/// propagating (a long-running daemon must not wedge on one bad request).
fn lock(m: &Mutex<PlanCache>) -> std::sync::MutexGuard<'_, PlanCache> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl WarmSolver {
    /// [`Solver::solve_observed`] against an external, shareable plan
    /// cache: the daemon keeps one [`PlanCache`] per device/precision
    /// pair behind a [`Mutex`] and threads it through every request, so
    /// cache state (entries, warm tables) persists *across* solves
    /// instead of being reloaded per process. The lock is held only
    /// around probe and insert, never during the solve itself.
    ///
    /// With `cache: None` this is a plain (budget-aware) solve; with
    /// [`WarmSolver::solve_observed`] the wrapper opens its own cache
    /// from [`WarmSolver::cache_dir`] and delegates here.
    pub fn solve_shared(
        &self,
        ctx: &PlanContext,
        model: &dyn PerfModel,
        obs: ObsHandle<'_>,
        cache: Option<&Mutex<PlanCache>>,
    ) -> SolveOutcome {
        let start = Instant::now();
        let deadline = self.budget.map(|b| start + b);
        let reg = MetricsRegistry::new();
        let mut controls = SolveControls {
            deadline,
            ..Default::default()
        };

        // Probe: fingerprint the program, look for an exact or near entry.
        // Candidate entries are cloned out so the lock drops before any
        // re-validation or search work.
        let mut probe: Option<(u64, Vec<u64>)> = None;
        if let Some(shared) = cache {
            let t0 = Instant::now();
            let colors = kernel_colors(&ctx.info);
            let sigs = kernel_signatures(&ctx.info);
            let fp = program_fingerprint_with(&ctx.info, &colors);
            reg.incr(Counter::CacheProbes);
            let mut outcome_code = PROBE_MISS;

            let (exact, near, region_fps, n_entries) = {
                let c = lock(shared);
                (
                    c.lookup_exact(fp).cloned(),
                    c.lookup_near(fp, &sigs, self.min_overlap)
                        .map(|(e, _overlap)| e.clone()),
                    c.region_fps(),
                    c.len() as u64,
                )
            };

            if let Some(entry) = &exact {
                if let Some(served) = self.try_serve(ctx, model, entry) {
                    reg.incr(Counter::CacheHits);
                    obs.record_span(
                        SpanId::CacheProbe,
                        0,
                        t0,
                        t0.elapsed(),
                        [n_entries, PROBE_EXACT],
                    );
                    return finish(served, &reg, start);
                }
                // Same fingerprint but the stored numbering does not fit
                // this program (isomorphic reorder) or the plan no longer
                // re-validates: fall back to seeding from it.
                if let Some(seed) = remap_entry(entry, &sigs) {
                    controls.seeds.push(seed);
                    reg.incr(Counter::WarmStarts);
                    outcome_code = PROBE_NEAR;
                }
            }
            if controls.seeds.is_empty() {
                if let Some(entry) = &near {
                    if let Some(seed) = remap_entry(entry, &sigs) {
                        controls.seeds.push(seed);
                        reg.incr(Counter::WarmStarts);
                        outcome_code = PROBE_NEAR;
                    }
                }
            }
            if outcome_code == PROBE_MISS {
                reg.incr(Counter::CacheMisses);
            }
            controls.cached_region_fps = region_fps;
            obs.record_span(
                SpanId::CacheProbe,
                0,
                t0,
                t0.elapsed(),
                [n_entries, outcome_code],
            );
            probe = Some((fp, sigs));
        }

        let mut out = self.inner.solve_controlled(ctx, model, obs, &controls);

        // Anytime quality bound: a budgeted run may have stopped before the
        // GA caught the polynomial baseline, so floor it at greedy (bounded
        // to sizes where greedy's quadratic sweep is effectively free —
        // the same confinement the hierarchical global floor uses).
        if deadline.is_some() && ctx.n_kernels() <= HggaHierSolver::GREEDY_FLOOR_LIMIT {
            let greedy = GreedySolver.solve(ctx, model);
            if greedy.objective < out.objective - 1e-15 {
                out.plan = greedy.plan;
                out.objective = greedy.objective;
            }
        }

        // Record the result for the next solve (miss and near-hit paths).
        // Region sub-fingerprints fold *local* signatures, matching the
        // hierarchical solver's floor-skip lookup (perturbation-local:
        // changing one kernel leaves other regions' fingerprints intact).
        if let (Some(shared), Some((fp, sigs))) = (cache, &probe) {
            let region_fps = match (
                self.inner.effective_max_region(ctx.n_kernels()),
                &ctx.program,
            ) {
                (Some(m), Some(_)) => partition_regions(ctx, m, self.inner.min_coupling)
                    .regions
                    .iter()
                    .filter(|r| r.len() >= 2)
                    .map(|r| region_fingerprint(sigs, r))
                    .collect(),
                _ => Vec::new(),
            };
            let entry = CacheEntry {
                version: CACHE_VERSION,
                fingerprint: *fp,
                program: ctx.info.name.clone(),
                gpu: ctx.info.gpu.name.clone(),
                precision: format!("{:?}", ctx.info.precision),
                n_kernels: ctx.n_kernels() as u32,
                objective: out.objective,
                kernel_sigs: sigs.clone(),
                groups: out
                    .plan
                    .groups
                    .iter()
                    .map(|g| g.iter().map(|k| k.0).collect())
                    .collect(),
                region_fps,
            };
            if let Err(e) = lock(shared).insert(entry) {
                eprintln!("warning: plan cache write failed: {e}");
            }
        }

        merge_counters(&mut out, &reg);
        out
    }
}

impl WarmSolver {
    /// Serve an exact hit: rebuild the cached plan, re-validate it through
    /// the plan rules *and* the independent verifier, and re-score it.
    /// `None` when anything disqualifies the entry (treated as a miss).
    fn try_serve(
        &self,
        ctx: &PlanContext,
        model: &dyn PerfModel,
        entry: &CacheEntry,
    ) -> Option<SolveOutcome> {
        if entry.n_kernels as usize != ctx.n_kernels() {
            return None;
        }
        let plan = entry.plan()?;
        if ctx.validate(&plan).is_err() {
            return None;
        }
        if !kfuse_verify::check_plan(&ctx.info, &plan, Some(model)).is_clean() {
            return None;
        }
        let ev = Evaluator::new(ctx, model);
        let objective = ev.plan(&plan);
        if !objective.is_finite() {
            return None;
        }
        ev.metrics().set_gauge(Gauge::BestObjective, objective);
        let metrics = ev.snapshot();
        let stats = SolveStats::from_metrics(&metrics);
        Some(SolveOutcome {
            plan,
            objective,
            stats,
            metrics,
        })
    }
}

/// Remap a cached plan onto the current program by local kernel signature:
/// each cached member is matched (greedily, lowest current id first) to an
/// unused current kernel with an identical signature. Groups keeping ≥ 2
/// matched members survive; every unmatched current kernel becomes a
/// singleton. `None` when no multi-member group survives — then the entry
/// teaches the search nothing.
fn remap_entry(entry: &CacheEntry, sigs: &[u64]) -> Option<FusionPlan> {
    let mut pool: HashMap<u64, Vec<u32>> = HashMap::new();
    for (i, &s) in sigs.iter().enumerate() {
        pool.entry(s).or_default().push(i as u32);
    }

    let mut taken = vec![false; sigs.len()];
    let mut groups: Vec<Vec<KernelId>> = Vec::new();
    for g in &entry.groups {
        if g.len() < 2 {
            continue;
        }
        let mut picked: Vec<u32> = Vec::new();
        for &ci in g {
            let Some(&sig) = entry.kernel_sigs.get(ci as usize) else {
                continue;
            };
            // Prefer the identity position: a near-repeat keeps most
            // kernels at their old index, and identity mapping keeps the
            // seed's groups aligned with the (unchanged) partition regions
            // even when many kernels share a signature.
            let identity =
                ((ci as usize) < sigs.len() && sigs[ci as usize] == sig && !taken[ci as usize])
                    .then_some(ci);
            let k = identity.or_else(|| {
                pool.get(&sig)
                    .and_then(|ids| ids.iter().copied().find(|&k| !taken[k as usize]))
            });
            if let Some(k) = k {
                taken[k as usize] = true;
                picked.push(k);
            }
        }
        if picked.len() >= 2 {
            let mut members: Vec<KernelId> = picked.iter().map(|&k| KernelId(k)).collect();
            members.sort_unstable();
            groups.push(members);
        } else {
            for k in picked {
                taken[k as usize] = false;
            }
        }
    }
    if groups.is_empty() {
        return None;
    }
    for (k, &t) in taken.iter().enumerate() {
        if !t {
            groups.push(vec![KernelId(k as u32)]);
        }
    }
    groups.sort_by_key(|g| g[0]);
    Some(FusionPlan::from_sorted_groups(groups))
}

/// Fold the wrapper's cache counters into a solve outcome's metrics.
fn merge_counters(out: &mut SolveOutcome, reg: &MetricsRegistry) {
    for c in Counter::ALL {
        reg.add(c, out.metrics.get(c));
    }
    for g in Gauge::ALL {
        if let Some(v) = out.metrics.gauge(g) {
            reg.set_gauge(g, v);
        }
    }
    out.metrics = reg.snapshot();
}

/// Finish a cache-served outcome: fold in the probe counters and stamp the
/// (tiny) wall time.
fn finish(mut out: SolveOutcome, reg: &MetricsRegistry, start: Instant) -> SolveOutcome {
    merge_counters(&mut out, reg);
    out.stats.elapsed = start.elapsed();
    out.stats.time_to_best = out.stats.elapsed;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(groups: Vec<Vec<u32>>, sigs: Vec<u64>) -> CacheEntry {
        CacheEntry {
            version: CACHE_VERSION,
            fingerprint: 1,
            program: "p".into(),
            gpu: "K20X".into(),
            precision: "Double".into(),
            n_kernels: sigs.len() as u32,
            objective: 1.0,
            kernel_sigs: sigs,
            groups,
            region_fps: Vec::new(),
        }
    }

    #[test]
    fn remap_matches_by_signature_not_position() {
        // Cached program: kernels [A, B, C] with sigs [10, 20, 30], plan
        // {A,C}{B}. Current program is the same kernels reordered:
        // sigs [30, 10, 20]. The group must land on current ids {0, 1}.
        let e = entry(vec![vec![0, 2], vec![1]], vec![10, 20, 30]);
        let plan = remap_entry(&e, &[30, 10, 20]).unwrap();
        assert_eq!(plan.groups.len(), 2);
        assert_eq!(plan.groups[0], vec![KernelId(0), KernelId(1)]);
        assert_eq!(plan.groups[1], vec![KernelId(2)]);
    }

    #[test]
    fn remap_drops_unmatched_members_and_fills_singletons() {
        // Cached {A,B,C} fused; current program kept A and C but B's
        // signature changed (perturbed kernel) and a new kernel D appeared.
        let e = entry(vec![vec![0, 1, 2]], vec![10, 20, 30]);
        let plan = remap_entry(&e, &[10, 99, 30, 40]).unwrap();
        assert_eq!(plan.groups[0], vec![KernelId(0), KernelId(2)]);
        // The perturbed and new kernels come back as singletons.
        assert!(plan.groups.contains(&vec![KernelId(1)]));
        assert!(plan.groups.contains(&vec![KernelId(3)]));
    }

    #[test]
    fn remap_with_nothing_in_common_is_none() {
        let e = entry(vec![vec![0, 1]], vec![10, 20]);
        assert!(remap_entry(&e, &[98, 99]).is_none());
        // A single surviving member is not a group either.
        assert!(remap_entry(&e, &[10, 99]).is_none());
    }

    #[test]
    fn remap_handles_duplicate_signatures() {
        // Two signature-identical kernels fused with a third: each cached
        // member consumes one unused current kernel, no double-assignment.
        let e = entry(vec![vec![0, 1], vec![2, 3]], vec![10, 10, 10, 20]);
        let plan = remap_entry(&e, &[10, 10, 10, 20]).unwrap();
        let mut all: Vec<KernelId> = plan.groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(
            all,
            vec![KernelId(0), KernelId(1), KernelId(2), KernelId(3)],
            "every kernel appears exactly once"
        );
        assert_eq!(plan.groups[0], vec![KernelId(0), KernelId(1)]);
        assert_eq!(plan.groups[1], vec![KernelId(2), KernelId(3)]);
    }
}
