//! Reference (pre-delta) HGGA operators over `Vec<Vec<KernelId>>` plans.
//!
//! These are the genetic operators and the single-population solver loop
//! exactly as they stood before the flat-chromosome rework ([`crate::chromo`]).
//! They are kept, unmodified, for two jobs:
//!
//! 1. **Pinning oracle** — the production solver must reproduce this
//!    code's trajectory bit for bit for any seed (the
//!    `single_island_reproduces_pre_island_solver_exactly` and
//!    reference-match tests in [`crate::hgga`] diff against
//!    [`reference::solve`](solve)). Every RNG draw, probe order and
//!    transient group order below is therefore load-bearing; do not
//!    "clean up" this module.
//! 2. **Benchmark baseline** — the Criterion operator benches in
//!    `crates/bench` measure the flat representation against these
//!    clone-heavy originals.

use crate::eval::Evaluator;
use kfuse_core::fuse::condensation_order;
use kfuse_core::model::PerfModel;
use kfuse_core::pipeline::{SolveOutcome, SolveStats};
use kfuse_core::plan::{FusionPlan, PlanContext};
use kfuse_ir::KernelId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::time::Instant;

use crate::hgga::HggaConfig;

/// A plan with its cached objective.
#[derive(Clone)]
pub struct Individual {
    /// The (repaired, feasible-or-identity) plan.
    pub plan: FusionPlan,
    /// `Evaluator::plan` objective.
    pub cost: f64,
}

/// Score plans in parallel with rayon.
pub fn evaluate(ev: &Evaluator<'_>, plans: Vec<FusionPlan>) -> Vec<Individual> {
    plans
        .into_par_iter()
        .map(|plan| {
            let cost = ev.plan(&plan);
            Individual { plan, cost }
        })
        .collect()
}

/// Score plans serially (used by per-island evolution).
pub fn evaluate_serial(ev: &Evaluator<'_>, plans: Vec<FusionPlan>) -> Vec<Individual> {
    plans
        .into_iter()
        .map(|plan| {
            let cost = ev.plan(&plan);
            Individual { plan, cost }
        })
        .collect()
}

/// Tournament selection: best of `k` uniform draws.
pub fn tournament(pop: &[Individual], k: usize, rng: &mut SmallRng) -> usize {
    (0..k.max(1))
        .map(|_| rng.gen_range(0..pop.len()))
        .min_by(|&a, &b| pop[a].cost.total_cmp(&pop[b].cost))
        .unwrap()
}

/// Build a random feasible plan by constructive merging from the identity.
pub fn random_plan(ctx: &PlanContext, ev: &Evaluator<'_>, rng: &mut SmallRng) -> FusionPlan {
    let n = ctx.n_kernels();
    let mut group_of: Vec<usize> = (0..n).collect();
    let mut groups: Vec<Vec<KernelId>> = (0..n).map(|i| vec![KernelId(i as u32)]).collect();

    let attempts = 2 * n;
    for _ in 0..attempts {
        let k = rng.gen_range(0..n);
        let neigh = ctx.share.neighbors(KernelId(k as u32));
        if neigh.is_empty() {
            continue;
        }
        let m = neigh[rng.gen_range(0..neigh.len())] as usize;
        let (ga, gb) = (group_of[k], group_of[m]);
        if ga == gb || groups[ga].is_empty() || groups[gb].is_empty() {
            continue;
        }
        let mut merged = groups[ga].clone();
        merged.extend_from_slice(&groups[gb]);
        if ev.feasible(&merged) {
            for &kid in &groups[gb] {
                group_of[kid.index()] = ga;
            }
            groups[ga] = merged;
            groups[gb].clear();
        }
    }
    let plan = FusionPlan::new(groups.into_iter().filter(|g| !g.is_empty()).collect());
    repair(ctx, ev, plan, rng)
}

/// Falkenauer group crossover: inject a selection of B's groups into A,
/// evict intersecting groups, first-fit the orphans, repair.
pub fn crossover(
    ctx: &PlanContext,
    ev: &Evaluator<'_>,
    a: &FusionPlan,
    b: &FusionPlan,
    rng: &mut SmallRng,
) -> FusionPlan {
    let donors: Vec<&Vec<KernelId>> = b.groups.iter().filter(|g| g.len() >= 2).collect();
    if donors.is_empty() {
        return a.clone();
    }
    // Inject 1..=ceil(half) random donor groups.
    let count = rng.gen_range(1..=donors.len().div_ceil(2));
    let mut chosen: Vec<Vec<KernelId>> = donors
        .choose_multiple(rng, count)
        .map(|g| (*g).clone())
        .collect();
    // Donor groups come from one partition, so they are disjoint by
    // construction; only overlaps with the recipient's groups need
    // resolving (evict the intersecting groups, re-seat their orphans).
    let injected: std::collections::HashSet<KernelId> = chosen.iter().flatten().copied().collect();

    let mut child: Vec<Vec<KernelId>> = Vec::new();
    let mut orphans: Vec<KernelId> = Vec::new();
    for g in &a.groups {
        if g.iter().any(|k| injected.contains(k)) {
            orphans.extend(g.iter().filter(|k| !injected.contains(k)));
        } else {
            child.push(g.clone());
        }
    }
    child.append(&mut chosen);

    first_fit(ev, &mut child, orphans, rng);
    repair(ctx, ev, FusionPlan::new(child), rng)
}

/// Mutation: bipartition, eliminate, merge, or move one kernel.
pub fn mutate(
    ctx: &PlanContext,
    ev: &Evaluator<'_>,
    plan: &FusionPlan,
    rng: &mut SmallRng,
) -> FusionPlan {
    let mut groups = plan.groups.clone();
    match rng.gen_range(0..4u8) {
        3 => {
            // Bipartition a random multi-member group: the only operator
            // that can escape a mega-group local optimum whose improvement
            // requires a coordinated split.
            let multi: Vec<usize> = groups
                .iter()
                .enumerate()
                .filter(|(_, g)| g.len() >= 3)
                .map(|(i, _)| i)
                .collect();
            if let Some(&gi) = multi.as_slice().choose(rng) {
                let members = groups[gi].clone();
                let (mut a, mut b) = (Vec::new(), Vec::new());
                for &m in &members {
                    if rng.gen_bool(0.5) {
                        a.push(m);
                    } else {
                        b.push(m);
                    }
                }
                if !a.is_empty() && !b.is_empty() {
                    groups[gi] = a;
                    groups.push(b);
                }
            }
        }
        0 => {
            // Eliminate a random multi-member group, scatter its members.
            let multi: Vec<usize> = groups
                .iter()
                .enumerate()
                .filter(|(_, g)| g.len() >= 2)
                .map(|(i, _)| i)
                .collect();
            if let Some(&gi) = multi.as_slice().choose(rng) {
                let orphans = groups.remove(gi);
                first_fit(ev, &mut groups, orphans, rng);
            }
        }
        1 => {
            // Merge two random groups.
            if groups.len() >= 2 {
                let gi = rng.gen_range(0..groups.len());
                let gj = rng.gen_range(0..groups.len());
                if gi != gj {
                    let mut merged = groups[gi].clone();
                    merged.extend_from_slice(&groups[gj]);
                    if ev.feasible(&merged) {
                        let (lo, hi) = (gi.min(gj), gi.max(gj));
                        groups.remove(hi);
                        groups.remove(lo);
                        groups.push(merged);
                    }
                }
            }
        }
        _ => {
            // Move one kernel to another group.
            let from: Vec<usize> = groups
                .iter()
                .enumerate()
                .filter(|(_, g)| g.len() >= 2)
                .map(|(i, _)| i)
                .collect();
            if let (Some(&gi), true) = (from.as_slice().choose(rng), groups.len() >= 2) {
                let vi = rng.gen_range(0..groups[gi].len());
                let k = groups[gi][vi];
                let gj = rng.gen_range(0..groups.len());
                if gj != gi {
                    let mut target = groups[gj].clone();
                    target.push(k);
                    let mut source = groups[gi].clone();
                    source.remove(vi);
                    if ev.feasible(&target) && (source.is_empty() || ev.feasible(&source)) {
                        groups[gj] = target;
                        if source.is_empty() {
                            groups.remove(gi);
                        } else {
                            groups[gi] = source;
                        }
                    }
                }
            }
        }
    }
    repair(ctx, ev, FusionPlan::new(groups), rng)
}

/// Falkenauer's local-improvement step: greedy best-of-sample moves
/// (pairwise merges and single-kernel transfers) applied while they reduce
/// the summed group cost. Bounded per invocation so the GA stays the
/// driver and the hill climber the polisher.
pub fn local_search(
    ctx: &PlanContext,
    ev: &Evaluator<'_>,
    plan: FusionPlan,
    rng: &mut SmallRng,
) -> FusionPlan {
    let mut groups = plan.groups;
    for _pass in 0..4 {
        let costs: Vec<f64> = groups.iter().map(|g| ev.group(g).time_s).collect();
        // Improving bipartitions first: sample random splits of larger
        // groups and take the best one found.
        let mut best_split: Option<(f64, usize, Vec<KernelId>, Vec<KernelId>)> = None;
        for _ in 0..12 {
            let gi = rng.gen_range(0..groups.len());
            if groups[gi].len() < 3 {
                continue;
            }
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for &m in &groups[gi] {
                if rng.gen_bool(0.5) {
                    a.push(m);
                } else {
                    b.push(m);
                }
            }
            if a.is_empty() || b.is_empty() {
                continue;
            }
            let (ta, tb) = (ev.group(&a).time_s, ev.group(&b).time_s);
            if ta.is_finite() && tb.is_finite() {
                let gain = costs[gi] - ta - tb;
                if gain > 1e-15 && best_split.as_ref().is_none_or(|(g, ..)| gain > *g) {
                    best_split = Some((gain, gi, a, b));
                }
            }
        }
        if let Some((_, gi, a, b)) = best_split {
            groups[gi] = a;
            groups.push(b);
            continue;
        }

        let mut best: Option<(f64, usize, usize, Option<usize>)> = None; // (gain, i, j, moved idx)
        let samples = 48.min(groups.len() * groups.len());
        for _ in 0..samples {
            let i = rng.gen_range(0..groups.len());
            let j = rng.gen_range(0..groups.len());
            if i == j {
                continue;
            }
            if rng.gen_bool(0.5) {
                // Merge i and j.
                let mut merged = groups[i].clone();
                merged.extend_from_slice(&groups[j]);
                let t = ev.group(&merged).time_s;
                if t.is_finite() {
                    let gain = costs[i] + costs[j] - t;
                    if gain > 1e-15 && best.is_none_or(|(g, ..)| gain > g) {
                        best = Some((gain, i, j, None));
                    }
                }
            } else if groups[i].len() >= 2 {
                // Move one kernel i→j.
                let vi = rng.gen_range(0..groups[i].len());
                let k = groups[i][vi];
                let mut target = groups[j].clone();
                target.push(k);
                let mut source = groups[i].clone();
                source.remove(vi);
                let ts = if source.is_empty() {
                    0.0
                } else {
                    ev.group(&source).time_s
                };
                let tt = ev.group(&target).time_s;
                if ts.is_finite() && tt.is_finite() {
                    let gain = costs[i] + costs[j] - ts - tt;
                    if gain > 1e-15 && best.is_none_or(|(g, ..)| gain > g) {
                        best = Some((gain, i, j, Some(vi)));
                    }
                }
            }
        }
        match best {
            Some((_, i, j, None)) => {
                let gj = std::mem::take(&mut groups[j]);
                groups[i].extend(gj);
                groups.retain(|g| !g.is_empty());
            }
            Some((_, i, j, Some(vi))) => {
                let k = groups[i].remove(vi);
                groups[j].push(k);
                groups.retain(|g| !g.is_empty());
            }
            None => break,
        }
    }
    repair(ctx, ev, FusionPlan::new(groups), rng)
}

/// Insert orphans into existing feasible groups, else as singletons.
pub fn first_fit(
    ev: &Evaluator<'_>,
    groups: &mut Vec<Vec<KernelId>>,
    mut orphans: Vec<KernelId>,
    rng: &mut SmallRng,
) {
    orphans.shuffle(rng);
    for k in orphans {
        let mut placed = false;
        // Try a bounded random sample of hosts.
        let mut idxs: Vec<usize> = (0..groups.len()).collect();
        idxs.shuffle(rng);
        for &gi in idxs.iter().take(8) {
            let mut cand = groups[gi].clone();
            cand.push(k);
            if ev.feasible(&cand) {
                groups[gi] = cand;
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push(vec![k]);
        }
    }
}

/// Repair to full feasibility: split infeasible groups into singletons and
/// break condensation cycles.
pub fn repair(
    ctx: &PlanContext,
    ev: &Evaluator<'_>,
    plan: FusionPlan,
    _rng: &mut SmallRng,
) -> FusionPlan {
    let mut groups: Vec<Vec<KernelId>> = Vec::with_capacity(plan.groups.len());
    for g in plan.groups {
        if g.len() == 1 || ev.feasible(&g) {
            groups.push(g);
        } else {
            for k in g {
                groups.push(vec![k]);
            }
        }
    }
    // Break condensation cycles by splitting one involved group at a time.
    loop {
        let candidate = FusionPlan::new(groups.clone());
        // Metrics-only instrumentation (no effect on the trajectory): the
        // scaling study compares per-variant condensation-check counts.
        ev.count_condensation();
        match condensation_order(&candidate, &ctx.exec) {
            Ok(_) => return candidate,
            Err(kfuse_core::fuse::FuseError::OrderCycle(a, _)) => {
                // Split the first stuck group.
                let gi = a.min(candidate.groups.len() - 1);
                let victim = candidate.groups[gi].clone();
                groups = candidate.groups;
                groups.remove(gi);
                for k in victim {
                    groups.push(vec![k]);
                }
            }
            Err(_) => return FusionPlan::identity(ctx.n_kernels()),
        }
    }
}

/// The single-population solver loop exactly as it stood before the
/// flat-chromosome rework. The production `islands == 1` path must match
/// this trajectory bit for bit.
pub fn solve(cfg: &HggaConfig, ctx: &PlanContext, model: &dyn PerfModel) -> SolveOutcome {
    let ev = Evaluator::new(ctx, model);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let start = Instant::now();

    let mut plans: Vec<FusionPlan> = (0..cfg.population)
        .map(|_| random_plan(ctx, &ev, &mut rng))
        .collect();
    let mut pop: Vec<Individual> = evaluate(&ev, std::mem::take(&mut plans));
    pop.sort_by(|a, b| a.cost.total_cmp(&b.cost));

    let mut best = pop[0].plan.clone();
    let mut best_cost = pop[0].cost;
    let mut best_gen = 0u32;
    let mut time_to_best = start.elapsed();
    let mut stall = 0u32;
    let mut generations = 0u32;

    for gen in 1..=cfg.max_generations {
        generations = gen;
        let mut offspring: Vec<FusionPlan> = Vec::with_capacity(cfg.population);
        for e in pop.iter().take(cfg.elitism) {
            offspring.push(e.plan.clone());
        }
        while offspring.len() < cfg.population {
            let pa = tournament(&pop, cfg.tournament, &mut rng);
            let pb = tournament(&pop, cfg.tournament, &mut rng);
            let mut child = if rng.gen_bool(cfg.crossover_rate) {
                crossover(ctx, &ev, &pop[pa].plan, &pop[pb].plan, &mut rng)
            } else {
                pop[pa.min(pb)].plan.clone()
            };
            if rng.gen_bool(cfg.mutation_rate) {
                child = mutate(ctx, &ev, &child, &mut rng);
            }
            if rng.gen_bool(cfg.local_search_rate) {
                child = local_search(ctx, &ev, child, &mut rng);
            }
            offspring.push(child);
        }
        let mut next = evaluate(&ev, offspring);
        next.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        pop = next;

        if pop[0].cost < best_cost - 1e-15 {
            best_cost = pop[0].cost;
            best = pop[0].plan.clone();
            best_gen = gen;
            time_to_best = start.elapsed();
            stall = 0;
        } else {
            stall += 1;
            if stall >= cfg.stall_generations {
                break;
            }
        }
    }

    // Registry parity: the frozen loop above counts generations by hand;
    // mirror the total into the registry once so the snapshot-derived
    // stats view (`SolveStats::from_metrics`) agrees with the hand-counted
    // block below. No RNG draw, no trajectory change.
    ev.count(kfuse_obs::Counter::Generations, generations as u64);

    SolveOutcome {
        plan: best,
        objective: best_cost,
        stats: SolveStats {
            generations,
            evaluations: ev.evaluations(),
            elapsed: start.elapsed(),
            time_to_best,
            best_generation: best_gen,
            probes: ev.probes(),
            cache_hit_rate: ev.hit_rate(),
            condensation_checks: ev.condensation_checks(),
            miss_rate: ev.miss_rate(),
            miss_ns: ev.miss_ns(),
            synth_ns: ev.synth_ns(),
            avg_batch_fill: ev.avg_batch_fill(),
            islands: Vec::new(),
        },
        metrics: ev.snapshot(),
    }
}
