//! Flat, group-encoded chromosome: the native currency of the HGGA inner
//! loop.
//!
//! A [`Chromosome`] stores every kernel id in one contiguous arena; groups
//! are `(start, len)` slots over that arena, each carrying a cached
//! [`GroupEval`] so genetic operators never re-probe groups they did not
//! touch. Operators mark the slots whose membership changed (`dirty`) and
//! the kernels that moved between slots (`moved`); the incremental
//! condensation cache rebuilds only the inter-group successor summaries
//! incident to those marks before the cycle test, instead of re-deriving
//! the whole condensation DAG per candidate plan.
//!
//! Invariants the HGGA relies on (see DESIGN.md §10):
//!
//! * `group_of[k]` always names the live slot holding kernel `k` — it is
//!   updated eagerly by every mutator, so edge summaries built from it are
//!   current even while `dirty`/`moved` marks are pending.
//! * `order` lists live slot ids in the transient Vec-of-Vecs order the
//!   legacy operators would have produced; [`Chromosome::finalize`] sorts
//!   it into normalized plan order, which makes repair bit-for-bit
//!   compatible with the reference solver.
//! * A slot's `eval` is trusted only when `eval_known`; operators that
//!   probed a candidate group pass the probe result along so finalize
//!   resolves the remaining unknowns with at most one memo lookup each.
//! * `cost` is NaN between mutations; only [`Chromosome::finalize`] and
//!   [`Chromosome::rescore`] produce a comparable objective, and both sum
//!   group times in normalized order so the f64 result is bitwise equal to
//!   [`Evaluator::plan`] on the converted [`FusionPlan`].

use crate::eval::{BatchProbe, Evaluator, GroupEval};
use kfuse_core::exec_order::ExecOrderGraph;
use kfuse_core::plan::FusionPlan;
use kfuse_core::synth::SynthScratch;
use kfuse_ir::KernelId;
use kfuse_obs::Counter;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const NO_SLOT: u32 = u32::MAX;

/// One group: a region of the member arena plus cached evaluation state
/// and a region of the flat edge arena (successor slot ids).
#[derive(Clone, Copy, Debug)]
struct Slot {
    start: u32,
    len: u32,
    estart: u32,
    elen: u32,
    eval: GroupEval,
    eval_known: bool,
    alive: bool,
}

/// Flat grouping chromosome with per-group cached evaluations and an
/// incrementally maintained inter-group edge summary.
#[derive(Clone, Debug)]
pub struct Chromosome {
    /// Member arena; live slots own disjoint regions (dead regions linger
    /// until [`Chromosome::finalize`] repacks).
    arena: Vec<KernelId>,
    slots: Vec<Slot>,
    /// Live slot ids in transient group order.
    order: Vec<u32>,
    /// Kernel index → live slot id; eagerly maintained.
    group_of: Vec<u32>,
    /// Flat successor-slot-id lists, indexed by each slot's `(estart, elen)`.
    edges: Vec<u32>,
    /// True when `edges` reflects the current membership except for the
    /// pending `dirty`/`moved` marks; false forces a full rebuild.
    cond_valid: bool,
    /// Slots whose own membership changed since the last edge refresh.
    dirty: Vec<u32>,
    /// Kernels whose slot assignment changed since the last edge refresh.
    moved: Vec<KernelId>,
    cost: f64,
    /// True when every live region is sorted and `order` is sorted by
    /// first member — i.e. the groups are in [`FusionPlan`] normal form.
    normalized: bool,
    n_kernels: usize,
}

/// Reusable buffers for chromosome maintenance and the genetic operators.
/// One per worker (island) — never shared across threads.
#[derive(Default)]
pub struct OpScratch {
    // Chromosome internals.
    succ_buf: Vec<u32>,
    stale: Vec<u32>,
    indeg: Vec<u32>,
    heap: BinaryHeap<Reverse<(KernelId, u32)>>,
    perm: Vec<u32>,
    arena2: Vec<KernelId>,
    slots2: Vec<Slot>,
    edges2: Vec<u32>,
    // Operator buffers (owned here so operators allocate nothing steady-state).
    pub(crate) probe: Vec<KernelId>,
    pub(crate) orphans: Vec<KernelId>,
    pub(crate) split_a: Vec<KernelId>,
    pub(crate) split_b: Vec<KernelId>,
    pub(crate) idxs: Vec<usize>,
    pub(crate) multi: Vec<usize>,
    pub(crate) injected: Vec<bool>,
    pub(crate) donors: Vec<u32>,
    pub(crate) chosen: Vec<u32>,
    /// Per-worker SoA synthesis scratch: every memo-miss evaluation issued
    /// through this worker synthesizes into these buffers.
    pub(crate) synth: SynthScratch,
    /// Per-worker batched memo probe: operators queue candidate moves here
    /// and rescore them lane-per-candidate in one flush.
    pub(crate) bp: BatchProbe,
    /// Evaluations written back by [`Evaluator::group_batch`], indexed by
    /// candidate position in `bp`.
    pub(crate) bevals: Vec<GroupEval>,
    /// One packed descriptor per queued sample, replayed after the flush:
    /// `[kind-or-slot, i, j, vi, candidate index]` (operators assign their
    /// own meanings per field).
    pub(crate) descs: Vec<[u32; 5]>,
}

impl OpScratch {
    /// Fresh scratch; buffers grow to steady-state sizes on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Chromosome {
    /// The identity chromosome: one singleton slot per kernel, evaluations
    /// filled from the evaluator's dense singleton baseline.
    pub fn identity(ev: &Evaluator) -> Self {
        let n = ev.ctx.n_kernels();
        let arena: Vec<KernelId> = (0..n).map(|k| KernelId(k as u32)).collect();
        let slots = (0..n)
            .map(|k| Slot {
                start: k as u32,
                len: 1,
                estart: 0,
                elen: 0,
                eval: ev.singleton(KernelId(k as u32)),
                eval_known: true,
                alive: true,
            })
            .collect();
        Chromosome {
            arena,
            slots,
            order: (0..n as u32).collect(),
            group_of: (0..n as u32).collect(),
            edges: Vec::new(),
            cond_valid: false,
            dirty: Vec::new(),
            moved: Vec::new(),
            cost: f64::NAN,
            normalized: true,
            n_kernels: n,
        }
    }

    /// Import a (normalized) [`FusionPlan`]. Singleton evaluations come from
    /// the dense baseline; multi-member groups stay unresolved until
    /// [`Chromosome::finalize`] or [`Chromosome::rescore`].
    pub fn from_plan(plan: &FusionPlan, ev: &Evaluator) -> Self {
        let n = ev.ctx.n_kernels();
        let mut arena = Vec::with_capacity(n);
        let mut slots = Vec::with_capacity(plan.groups.len());
        let mut group_of = vec![NO_SLOT; n];
        for g in &plan.groups {
            let sid = slots.len() as u32;
            let start = arena.len() as u32;
            arena.extend_from_slice(g);
            for &k in g {
                group_of[k.index()] = sid;
            }
            let (eval, eval_known) = if let [k] = g.as_slice() {
                (ev.singleton(*k), true)
            } else {
                (GroupEval { time_s: f64::NAN }, false)
            };
            slots.push(Slot {
                start,
                len: g.len() as u32,
                estart: 0,
                elen: 0,
                eval,
                eval_known,
                alive: true,
            });
        }
        Chromosome {
            arena,
            order: (0..slots.len() as u32).collect(),
            slots,
            group_of,
            edges: Vec::new(),
            cond_valid: false,
            dirty: Vec::new(),
            moved: Vec::new(),
            cost: f64::NAN,
            normalized: true,
            n_kernels: n,
        }
    }

    /// The finalized objective. NaN if the chromosome has been mutated
    /// since the last [`Chromosome::finalize`] / [`Chromosome::rescore`].
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Number of live groups.
    pub fn group_count(&self) -> usize {
        self.order.len()
    }

    /// Total kernels covered.
    pub fn n_kernels(&self) -> usize {
        self.n_kernels
    }

    /// Members of the group at transient position `pos`.
    pub fn members_at(&self, pos: usize) -> &[KernelId] {
        self.slot_members(self.order[pos])
    }

    /// Slot id at transient position `pos`.
    pub fn slot_id_at(&self, pos: usize) -> u32 {
        self.order[pos]
    }

    /// Members of slot `sid`.
    pub fn slot_members(&self, sid: u32) -> &[KernelId] {
        let s = &self.slots[sid as usize];
        &self.arena[s.start as usize..(s.start + s.len) as usize]
    }

    /// Cached evaluation of slot `sid`, if resolved.
    pub fn slot_eval(&self, sid: u32) -> Option<GroupEval> {
        let s = &self.slots[sid as usize];
        s.eval_known.then_some(s.eval)
    }

    /// Cached evaluation of the group at position `pos`, if resolved.
    pub fn eval_at(&self, pos: usize) -> Option<GroupEval> {
        self.slot_eval(self.order[pos])
    }

    /// Slot currently holding kernel `k`.
    pub fn slot_of(&self, k: KernelId) -> u32 {
        self.group_of[k.index()]
    }

    /// Transient position of slot `sid` (linear scan; operators use this
    /// only off the per-sample hot path).
    pub fn position_of_slot(&self, sid: u32) -> usize {
        self.order
            .iter()
            .position(|&s| s == sid)
            .expect("slot not in order")
    }

    /// Convert to the boundary [`FusionPlan`] type.
    pub fn to_plan(&self) -> FusionPlan {
        let groups: Vec<Vec<KernelId>> = self
            .order
            .iter()
            .map(|&sid| self.slot_members(sid).to_vec())
            .collect();
        if self.normalized {
            FusionPlan::from_sorted_groups(groups)
        } else {
            FusionPlan::new(groups)
        }
    }

    fn mark_dirty(&mut self, sid: u32) {
        self.dirty.push(sid);
    }

    fn touch(&mut self) {
        self.cost = f64::NAN;
        self.normalized = false;
    }

    /// Append a new group at the end of the transient order. Pass the eval
    /// when the operator already probed the members. Returns the slot id.
    pub fn push_group(&mut self, members: &[KernelId], eval: Option<GroupEval>) -> u32 {
        debug_assert!(!members.is_empty());
        let sid = self.slots.len() as u32;
        let start = self.arena.len() as u32;
        self.arena.extend_from_slice(members);
        for &k in members {
            self.group_of[k.index()] = sid;
            self.moved.push(k);
        }
        self.slots.push(Slot {
            start,
            len: members.len() as u32,
            estart: 0,
            elen: 0,
            eval: eval.unwrap_or(GroupEval { time_s: f64::NAN }),
            eval_known: eval.is_some(),
            alive: true,
        });
        self.order.push(sid);
        self.mark_dirty(sid);
        self.touch();
        sid
    }

    /// Append kernel `k` to the group at position `pos`, with the probed
    /// evaluation of the grown group. The region relocates to the arena
    /// tail so it can grow in place later.
    pub fn push_member(&mut self, pos: usize, k: KernelId, eval: GroupEval) {
        let sid = self.order[pos];
        let s = self.slots[sid as usize];
        let at_tail = (s.start + s.len) as usize == self.arena.len();
        if !at_tail {
            let new_start = self.arena.len() as u32;
            let range = s.start as usize..(s.start + s.len) as usize;
            self.arena.extend_from_within(range);
            self.slots[sid as usize].start = new_start;
        }
        self.arena.push(k);
        let s = &mut self.slots[sid as usize];
        s.len += 1;
        s.eval = eval;
        s.eval_known = true;
        self.group_of[k.index()] = sid;
        self.moved.push(k);
        self.mark_dirty(sid);
        self.touch();
    }

    /// Remove the member at index `vi` of the group at position `pos`. The
    /// caller must have re-homed the kernel *first* (its `group_of` entry
    /// already points elsewhere). If members remain, `eval` must carry the
    /// probed evaluation of the shrunk group; an emptied slot dies.
    pub fn remove_member(&mut self, pos: usize, vi: usize, eval: Option<GroupEval>) {
        let sid = self.order[pos];
        let s = self.slots[sid as usize];
        debug_assert!(vi < s.len as usize);
        let base = s.start as usize;
        self.arena
            .copy_within(base + vi + 1..base + s.len as usize, base + vi);
        let s = &mut self.slots[sid as usize];
        s.len -= 1;
        if s.len == 0 {
            s.alive = false;
            self.order.remove(pos);
        } else {
            let e = eval.expect("shrunk group needs its probed eval");
            s.eval = e;
            s.eval_known = true;
            self.mark_dirty(sid);
        }
        self.touch();
    }

    /// Merge the groups at positions `i` and `j` into a *new* slot appended
    /// at the end of the transient order (members of `i` then `j`),
    /// mirroring the legacy `remove(hi); remove(lo); push(merged)` shape.
    pub fn merge_append(&mut self, i: usize, j: usize, eval: GroupEval) {
        debug_assert_ne!(i, j);
        let (si, sj) = (self.order[i], self.order[j]);
        let start = self.arena.len() as u32;
        let sid = self.slots.len() as u32;
        for src in [si, sj] {
            let s = self.slots[src as usize];
            let range = s.start as usize..(s.start + s.len) as usize;
            self.arena.extend_from_within(range);
            self.slots[src as usize].alive = false;
        }
        let len = self.arena.len() as u32 - start;
        for idx in start as usize..self.arena.len() {
            let k = self.arena[idx];
            self.group_of[k.index()] = sid;
            self.moved.push(k);
        }
        self.slots.push(Slot {
            start,
            len,
            estart: 0,
            elen: 0,
            eval,
            eval_known: true,
            alive: true,
        });
        let (lo, hi) = (i.min(j), i.max(j));
        self.order.remove(hi);
        self.order.remove(lo);
        self.order.push(sid);
        self.mark_dirty(sid);
        self.touch();
    }

    /// Merge the group at position `j` into the one at position `i`, which
    /// keeps its slot id and transient position (`extend` semantics).
    pub fn merge_into(&mut self, i: usize, j: usize, eval: GroupEval) {
        debug_assert_ne!(i, j);
        let (si, sj) = (self.order[i], self.order[j]);
        let s = self.slots[si as usize];
        let at_tail = (s.start + s.len) as usize == self.arena.len();
        if !at_tail {
            let new_start = self.arena.len() as u32;
            let range = s.start as usize..(s.start + s.len) as usize;
            self.arena.extend_from_within(range);
            self.slots[si as usize].start = new_start;
        }
        let d = self.slots[sj as usize];
        let range = d.start as usize..(d.start + d.len) as usize;
        self.arena.extend_from_within(range.clone());
        for idx in range {
            let k = self.arena[idx];
            self.group_of[k.index()] = si;
            self.moved.push(k);
        }
        let s = &mut self.slots[si as usize];
        s.len += d.len;
        s.eval = eval;
        s.eval_known = true;
        self.slots[sj as usize].alive = false;
        self.order.remove(j);
        self.mark_dirty(si);
        self.touch();
    }

    /// Replace the membership of the group at position `pos` with a subset
    /// of its current members (bipartition keep-side). The dropped members
    /// must be re-homed by the caller via [`Chromosome::push_group`].
    pub fn replace_members(&mut self, pos: usize, members: &[KernelId], eval: Option<GroupEval>) {
        let sid = self.order[pos];
        let s = self.slots[sid as usize];
        debug_assert!(!members.is_empty() && members.len() <= s.len as usize);
        let base = s.start as usize;
        self.arena[base..base + members.len()].copy_from_slice(members);
        let s = &mut self.slots[sid as usize];
        s.len = members.len() as u32;
        match eval {
            Some(e) => {
                s.eval = e;
                s.eval_known = true;
            }
            None => s.eval_known = false,
        }
        for &k in members {
            self.group_of[k.index()] = sid;
        }
        self.mark_dirty(sid);
        self.touch();
    }

    /// Mark the group at position `pos` dead without disturbing positions;
    /// pair with [`Chromosome::compact_order`] once all evictions are done
    /// (crossover removes several groups while iterating).
    pub fn kill_group(&mut self, pos: usize) {
        let sid = self.order[pos];
        self.slots[sid as usize].alive = false;
        self.touch();
    }

    /// Drop dead entries from the transient order, preserving relative
    /// order of the survivors.
    pub fn compact_order(&mut self) {
        let slots = &self.slots;
        self.order.retain(|&sid| slots[sid as usize].alive);
    }

    /// Remove the group at position `pos`, appending its members to
    /// `orphans` (mutate's eliminate case).
    pub fn remove_group_at(&mut self, pos: usize, orphans: &mut Vec<KernelId>) {
        let sid = self.order[pos];
        orphans.extend_from_slice(self.slot_members(sid));
        self.slots[sid as usize].alive = false;
        self.order.remove(pos);
        self.touch();
    }

    /// Unconditionally move kernel `k` into the group at position `to_pos`,
    /// invalidating both touched evaluations. This is the raw structural
    /// edit the delta-scoring benchmark drives; solver operators use the
    /// probed-eval mutators instead.
    pub fn move_kernel(&mut self, k: KernelId, to_pos: usize) {
        let from_sid = self.group_of[k.index()];
        let to_sid = self.order[to_pos];
        if from_sid == to_sid {
            return;
        }
        // Append to the target first so the source removal sees the new home.
        let s = self.slots[to_sid as usize];
        let at_tail = (s.start + s.len) as usize == self.arena.len();
        if !at_tail {
            let new_start = self.arena.len() as u32;
            let range = s.start as usize..(s.start + s.len) as usize;
            self.arena.extend_from_within(range);
            self.slots[to_sid as usize].start = new_start;
        }
        self.arena.push(k);
        let s = &mut self.slots[to_sid as usize];
        s.len += 1;
        s.eval_known = false;
        self.group_of[k.index()] = to_sid;
        self.moved.push(k);
        self.mark_dirty(to_sid);

        let from = self.slots[from_sid as usize];
        let base = from.start as usize;
        let vi = self.arena[base..base + from.len as usize]
            .iter()
            .position(|&m| m == k)
            .expect("kernel not in its recorded slot");
        self.arena
            .copy_within(base + vi + 1..base + from.len as usize, base + vi);
        let from = &mut self.slots[from_sid as usize];
        from.len -= 1;
        if from.len == 0 {
            from.alive = false;
            let pos = self.position_of_slot(from_sid);
            self.order.remove(pos);
        } else {
            from.eval_known = false;
            self.mark_dirty(from_sid);
        }
        self.touch();
    }

    /// Split slot `sid` into singletons appended at the arena/order tails.
    fn split_slot(&mut self, sid: u32, ev: &Evaluator) {
        let s = self.slots[sid as usize];
        self.slots[sid as usize].alive = false;
        for idx in s.start as usize..(s.start + s.len) as usize {
            let k = self.arena[idx];
            let new_sid = self.slots.len() as u32;
            let start = self.arena.len() as u32;
            self.arena.push(k);
            self.slots.push(Slot {
                start,
                len: 1,
                estart: 0,
                elen: 0,
                eval: ev.singleton(k),
                eval_known: true,
                alive: true,
            });
            self.group_of[k.index()] = new_sid;
            self.order.push(new_sid);
            self.moved.push(k);
            self.dirty.push(new_sid);
        }
    }

    /// Rebuild the successor-slot summary of `sid`, appending at the edge
    /// arena tail.
    fn rebuild_slot_edges(&mut self, sid: u32, exec: &ExecOrderGraph, scratch: &mut OpScratch) {
        let s = self.slots[sid as usize];
        let members = &self.arena[s.start as usize..(s.start + s.len) as usize];
        exec.group_succs_into(members, &self.group_of, sid, &mut scratch.succ_buf);
        let estart = self.edges.len() as u32;
        self.edges.extend_from_slice(&scratch.succ_buf);
        let s = &mut self.slots[sid as usize];
        s.estart = estart;
        s.elen = scratch.succ_buf.len() as u32;
    }

    /// Bring the edge summaries up to date. Incremental when possible: only
    /// slots whose membership changed, plus slots with an exec-order edge
    /// into a moved kernel, are rebuilt. A non-stale slot's successor list
    /// cannot have changed — it could only change if some successor kernel
    /// of its members moved, and then the slot is a predecessor-slot of a
    /// moved kernel and is in the stale set.
    fn refresh_edges(&mut self, exec: &ExecOrderGraph, scratch: &mut OpScratch) {
        if !self.cond_valid {
            self.edges.clear();
            let mut order = std::mem::take(&mut self.order);
            for &sid in &order {
                self.rebuild_slot_edges(sid, exec, scratch);
            }
            std::mem::swap(&mut self.order, &mut order);
            self.cond_valid = true;
            self.dirty.clear();
            self.moved.clear();
            return;
        }
        let mut stale = std::mem::take(&mut scratch.stale);
        stale.clear();
        for &sid in &self.dirty {
            if self.slots[sid as usize].alive {
                stale.push(sid);
            }
        }
        for &k in &self.moved {
            for &p in exec.preds_of(k) {
                let sid = self.group_of[p.index()];
                debug_assert!(self.slots[sid as usize].alive);
                stale.push(sid);
            }
        }
        stale.sort_unstable();
        stale.dedup();
        for &sid in &stale {
            self.rebuild_slot_edges(sid, exec, scratch);
        }
        scratch.stale = stale;
        self.dirty.clear();
        self.moved.clear();
    }

    /// Kahn's algorithm over the cached edge summary, keyed exactly like
    /// [`kfuse_core::fuse::condensation_order_with`] (min first-kernel
    /// first). Requires normalized regions so `arena[start]` is each
    /// group's minimum member. Leaves `scratch.indeg` populated so the
    /// caller can find the first stuck group. Returns true if acyclic.
    fn kahn(&self, scratch: &mut OpScratch) -> bool {
        debug_assert!(self.normalized);
        scratch.indeg.clear();
        scratch.indeg.resize(self.slots.len(), 0);
        for &sid in &self.order {
            let s = &self.slots[sid as usize];
            for &g in &self.edges[s.estart as usize..(s.estart + s.elen) as usize] {
                scratch.indeg[g as usize] += 1;
            }
        }
        scratch.heap.clear();
        for &sid in &self.order {
            if scratch.indeg[sid as usize] == 0 {
                let s = &self.slots[sid as usize];
                scratch
                    .heap
                    .push(Reverse((self.arena[s.start as usize], sid)));
            }
        }
        let mut done = 0usize;
        while let Some(Reverse((_, sid))) = scratch.heap.pop() {
            done += 1;
            let s = &self.slots[sid as usize];
            for &g in &self.edges[s.estart as usize..(s.estart + s.elen) as usize] {
                let d = &mut scratch.indeg[g as usize];
                *d -= 1;
                if *d == 0 {
                    let t = &self.slots[g as usize];
                    self.heap_push(scratch, self.arena[t.start as usize], g);
                }
            }
        }
        done == self.order.len()
    }

    fn heap_push(&self, scratch: &mut OpScratch, key: KernelId, sid: u32) {
        scratch.heap.push(Reverse((key, sid)));
    }

    /// Sort members within each live region and the order by first member.
    fn normalize(&mut self) {
        if self.normalized {
            return;
        }
        let arena = &mut self.arena;
        for &sid in &self.order {
            let s = &self.slots[sid as usize];
            arena[s.start as usize..(s.start + s.len) as usize].sort_unstable();
        }
        let slots = &self.slots;
        let arena = &self.arena;
        self.order
            .sort_unstable_by_key(|&sid| arena[slots[sid as usize].start as usize]);
        self.normalized = true;
    }

    /// Compact arena, slots and edges so live data is contiguous and slot
    /// ids equal transient positions. Keeps the edge cache valid (ids are
    /// remapped), so the next mutation round stays incremental.
    fn repack(&mut self, scratch: &mut OpScratch) {
        scratch.perm.clear();
        scratch.perm.resize(self.slots.len(), NO_SLOT);
        for (new, &sid) in self.order.iter().enumerate() {
            scratch.perm[sid as usize] = new as u32;
        }
        scratch.arena2.clear();
        scratch.slots2.clear();
        scratch.edges2.clear();
        for &sid in &self.order {
            let s = self.slots[sid as usize];
            let start = scratch.arena2.len() as u32;
            scratch
                .arena2
                .extend_from_slice(&self.arena[s.start as usize..(s.start + s.len) as usize]);
            let estart = scratch.edges2.len() as u32;
            for &g in &self.edges[s.estart as usize..(s.estart + s.elen) as usize] {
                let ng = scratch.perm[g as usize];
                debug_assert_ne!(ng, NO_SLOT, "edge to a dead slot survived refresh");
                scratch.edges2.push(ng);
            }
            scratch.slots2.push(Slot {
                start,
                len: s.len,
                estart,
                elen: s.elen,
                eval: s.eval,
                eval_known: s.eval_known,
                alive: true,
            });
        }
        std::mem::swap(&mut self.arena, &mut scratch.arena2);
        std::mem::swap(&mut self.slots, &mut scratch.slots2);
        std::mem::swap(&mut self.edges, &mut scratch.edges2);
        self.order.clear();
        self.order.extend(0..self.slots.len() as u32);
        for (sid, s) in self.slots.iter().enumerate() {
            for &k in &self.arena[s.start as usize..(s.start + s.len) as usize] {
                self.group_of[k.index()] = sid as u32;
            }
        }
    }

    /// Amortized self-maintenance for long runs of raw structural edits
    /// that never reach a [`Chromosome::finalize`] (neighbor-move scoring
    /// loops): once relocated regions have grown the arena past twice the
    /// kernel count, rewrite the live member regions — and their cached
    /// edge lists — contiguously. Slot ids are untouched, so the
    /// incremental edge cache, `group_of`, and caller-held positions all
    /// stay valid.
    fn compact_storage(&mut self, scratch: &mut OpScratch) {
        if self.arena.len() <= 2 * self.n_kernels {
            return;
        }
        scratch.arena2.clear();
        scratch.edges2.clear();
        let order = std::mem::take(&mut self.order);
        for &sid in &order {
            let s = &mut self.slots[sid as usize];
            let start = scratch.arena2.len() as u32;
            scratch
                .arena2
                .extend_from_slice(&self.arena[s.start as usize..(s.start + s.len) as usize]);
            s.start = start;
            let estart = scratch.edges2.len() as u32;
            scratch
                .edges2
                .extend_from_slice(&self.edges[s.estart as usize..(s.estart + s.elen) as usize]);
            s.estart = estart;
        }
        self.order = order;
        std::mem::swap(&mut self.arena, &mut scratch.arena2);
        std::mem::swap(&mut self.edges, &mut scratch.edges2);
    }

    /// Normalize, repair to feasibility (split infeasible multi-member
    /// groups into singletons, then split condensation-cycle victims until
    /// acyclic — bit-for-bit the legacy `repair`), repack, and compute the
    /// objective. After this the chromosome is in plan normal form and
    /// [`Chromosome::cost`] equals `ev.plan(&self.to_plan())`.
    pub fn finalize(&mut self, ev: &Evaluator, scratch: &mut OpScratch) {
        ev.count(Counter::Finalizes, 1);
        self.normalize();

        // Phase 1: singletons pass unchecked (exactly like legacy repair);
        // multi-member groups must be feasible or dissolve.
        //
        // Every unresolved multi-member eval is gathered up front and
        // scored as one lane batch: the loop below only appends slots past
        // `initial` (splits), so the memberships probed here are exactly
        // the ones the one-at-a-time loop would have probed.
        let initial = self.order.len();
        scratch.bp.clear();
        scratch.descs.clear();
        for pos in 0..initial {
            let sid = self.order[pos];
            let s = self.slots[sid as usize];
            if s.len >= 2 && !s.eval_known {
                scratch
                    .bp
                    .push(&self.arena[s.start as usize..(s.start + s.len) as usize]);
                scratch.descs.push([sid, 0, 0, 0, 0]);
            }
        }
        if scratch.descs.len() >= 2 {
            ev.group_batch(&mut scratch.bp, &mut scratch.bevals);
            for (d, e) in scratch.descs.iter().zip(&scratch.bevals) {
                let slot = &mut self.slots[d[0] as usize];
                slot.eval = *e;
                slot.eval_known = true;
                ev.count(Counter::GroupsRescored, 1);
            }
        }
        let mut killed = false;
        for pos in 0..initial {
            let sid = self.order[pos];
            let s = self.slots[sid as usize];
            if s.len == 1 {
                if !s.eval_known {
                    let k = self.arena[s.start as usize];
                    let slot = &mut self.slots[sid as usize];
                    slot.eval = ev.singleton(k);
                    slot.eval_known = true;
                    ev.count(Counter::GroupsRescored, 1);
                }
                continue;
            }
            let eval = if s.eval_known {
                s.eval
            } else {
                let members = &self.arena[s.start as usize..(s.start + s.len) as usize];
                let e = ev.group_with(members, &mut scratch.synth);
                let slot = &mut self.slots[sid as usize];
                slot.eval = e;
                slot.eval_known = true;
                ev.count(Counter::GroupsRescored, 1);
                e
            };
            if !eval.feasible() {
                self.split_slot(sid, ev);
                ev.count(Counter::GroupsSplit, 1);
                killed = true;
            }
        }
        if killed {
            self.compact_order();
            self.normalized = false;
            self.normalize_order_only();
        }

        // Phase 2: split the first stuck group (minimal first member) until
        // the condensation is acyclic — the legacy victim choice.
        loop {
            self.refresh_edges(&ev.ctx.exec, scratch);
            ev.count_condensation();
            if self.kahn(scratch) {
                break;
            }
            let victim = *self
                .order
                .iter()
                .find(|&&sid| scratch.indeg[sid as usize] > 0)
                .expect("cycle without a stuck group");
            self.split_slot(victim, ev);
            self.compact_order();
            self.normalized = false;
            self.normalize_order_only();
        }

        self.repack(scratch);

        // Objective: ordered sum in plan order, infinity on the first
        // infeasible group — bitwise identical to `Evaluator::plan`.
        let mut total = 0.0;
        for &sid in &self.order {
            let s = &self.slots[sid as usize];
            debug_assert!(s.eval_known);
            if !s.eval.feasible() {
                total = f64::INFINITY;
                break;
            }
            total += s.eval.time_s;
        }
        self.cost = total;
    }

    /// Re-sort only the order (regions already member-sorted; splits append
    /// sorted singletons, so per-region order is intact).
    fn normalize_order_only(&mut self) {
        let slots = &self.slots;
        let arena = &self.arena;
        self.order
            .sort_unstable_by_key(|&sid| arena[slots[sid as usize].start as usize]);
        self.normalized = true;
    }

    /// Score the chromosome *as is* — no repair. Semantics match
    /// [`Evaluator::plan`] on the converted plan: resolve group evals in
    /// normalized order with an infinity short-circuit, then run the
    /// (incremental) condensation cycle test only if every group is
    /// feasible and at least one is fused. This is the delta-scoring entry
    /// point the benchmarks and the differential test drive.
    pub fn rescore(&mut self, ev: &Evaluator, scratch: &mut OpScratch) -> f64 {
        ev.count(Counter::DeltaRescores, 1);
        self.compact_storage(scratch);
        self.normalize();
        let mut total = 0.0;
        let mut any_multi = false;
        let mut feasible = true;
        for pos in 0..self.order.len() {
            let sid = self.order[pos];
            let s = self.slots[sid as usize];
            let eval = if s.eval_known {
                s.eval
            } else {
                let e = if s.len == 1 {
                    ev.singleton(self.arena[s.start as usize])
                } else {
                    ev.group_with(
                        &self.arena[s.start as usize..(s.start + s.len) as usize],
                        &mut scratch.synth,
                    )
                };
                ev.count(Counter::GroupsRescored, 1);
                let slot = &mut self.slots[sid as usize];
                slot.eval = e;
                slot.eval_known = true;
                e
            };
            if !eval.feasible() {
                feasible = false;
                break;
            }
            any_multi |= s.len >= 2;
            total += eval.time_s;
        }
        if !feasible {
            self.cost = f64::INFINITY;
            return self.cost;
        }
        if any_multi {
            self.refresh_edges(&ev.ctx.exec, scratch);
            ev.count_condensation();
            if !self.kahn(scratch) {
                self.cost = f64::INFINITY;
                return self.cost;
            }
        }
        self.cost = total;
        total
    }

    /// Internal consistency check used by debug assertions and tests.
    #[cfg(any(test, debug_assertions))]
    pub fn check_invariants(&self) {
        let mut seen = vec![false; self.n_kernels];
        for &sid in &self.order {
            let s = &self.slots[sid as usize];
            assert!(s.alive, "dead slot {sid} in order");
            assert!(s.len >= 1);
            for &k in self.slot_members(sid) {
                assert!(!seen[k.index()], "kernel {k} in two groups");
                seen[k.index()] = true;
                assert_eq!(self.group_of[k.index()], sid, "stale group_of for {k}");
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "chromosome does not cover all kernels"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use kfuse_core::pipeline::prepare;
    use kfuse_core::plan::PlanContext;
    use kfuse_gpu::{FpPrecision, GpuSpec};
    use kfuse_ir::builder::ProgramBuilder;
    use kfuse_ir::Expr;

    fn context() -> PlanContext {
        // Chain k0→k1→k2 plus a cross-linked pair; rich enough to exercise
        // merges, cycles and infeasibility under arbitrary grouping.
        let mut pb = ProgramBuilder::new("p", [64, 4, 1]);
        let a = pb.array("A");
        let b = pb.array("B");
        let c = pb.array("C");
        let d = pb.array("D");
        let e = pb.array("E");
        let x = pb.array("X");
        let y = pb.array("Y");
        pb.kernel("k0").write(b, Expr::at(a)).build();
        pb.kernel("k1").write(c, Expr::at(b)).build();
        pb.kernel("k2").write(d, Expr::at(c)).build();
        pb.kernel("k3").write(y, Expr::at(x)).build();
        pb.kernel("k4").write(e, Expr::at(y) + Expr::at(a)).build();
        pb.kernel("k5").write(x, Expr::at(d) + Expr::at(e)).build();
        let p = pb.build();
        let (_, ctx) = prepare(&p, &GpuSpec::k20x(), FpPrecision::Double);
        ctx
    }

    fn k(i: u32) -> KernelId {
        KernelId(i)
    }

    #[test]
    fn identity_roundtrip_matches_evaluator() {
        let ctx = context();
        let model = kfuse_core::model::ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        let mut scratch = OpScratch::new();
        let mut ch = Chromosome::identity(&ev);
        ch.check_invariants();
        ch.finalize(&ev, &mut scratch);
        let plan = ch.to_plan();
        assert_eq!(plan, FusionPlan::identity(ctx.n_kernels()));
        assert_eq!(ch.cost(), ev.plan(&plan));
    }

    #[test]
    fn from_plan_finalize_matches_full_eval() {
        let ctx = context();
        let model = kfuse_core::model::ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        let mut scratch = OpScratch::new();
        let plan = FusionPlan::new(vec![
            vec![k(0), k(1)],
            vec![k(2)],
            vec![k(3), k(4)],
            vec![k(5)],
        ]);
        let mut ch = Chromosome::from_plan(&plan, &ev);
        ch.finalize(&ev, &mut scratch);
        ch.check_invariants();
        let out = ch.to_plan();
        // finalize repairs; the repaired plan must score exactly its cost.
        assert_eq!(ch.cost(), ev.plan(&out));
        assert!(ch.cost().is_finite());
    }

    #[test]
    fn mutator_sequence_tracks_full_eval() {
        let ctx = context();
        let model = kfuse_core::model::ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        let mut scratch = OpScratch::new();
        let mut ch = Chromosome::identity(&ev);
        ch.finalize(&ev, &mut scratch);

        // Merge k0,k1 via merge_into (positions = slot ids after repack).
        let merged = [k(0), k(1)];
        let e01 = ev.group(&merged);
        if e01.feasible() {
            ch.merge_into(0, 1, e01);
            ch.finalize(&ev, &mut scratch);
            ch.check_invariants();
            assert_eq!(ch.cost(), ev.plan(&ch.to_plan()));
        }

        // Structural move + rescore against from-scratch plan eval.
        let mut raw = ch.clone();
        let to = raw.group_count() - 1;
        raw.move_kernel(k(2), to);
        raw.check_invariants();
        let delta = raw.rescore(&ev, &mut scratch);
        assert_eq!(delta, ev.plan(&raw.to_plan()));
    }

    #[test]
    fn rescore_flags_cycles_like_plan_eval() {
        let ctx = context();
        let model = kfuse_core::model::ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        let mut scratch = OpScratch::new();
        // {k0,k2} sandwiches k1 — path closure fails, so the group is
        // infeasible; rescore must agree with ev.plan either way.
        let plan = FusionPlan::new(vec![
            vec![k(0), k(2)],
            vec![k(1)],
            vec![k(3)],
            vec![k(4)],
            vec![k(5)],
        ]);
        let mut ch = Chromosome::from_plan(&plan, &ev);
        let got = ch.rescore(&ev, &mut scratch);
        assert_eq!(got, ev.plan(&plan));
    }

    #[test]
    fn incremental_edges_match_full_rebuild() {
        let ctx = context();
        let model = kfuse_core::model::ProposedModel::default();
        let ev = Evaluator::new(&ctx, &model);
        let mut scratch = OpScratch::new();
        let mut ch = Chromosome::identity(&ev);
        ch.finalize(&ev, &mut scratch);

        // Structural edits, incrementally refreshed.
        let to = ch.group_count() - 1;
        ch.move_kernel(k(0), to);
        ch.normalize();
        ch.refresh_edges(&ctx.exec, &mut scratch);
        let incr_ok = ch.kahn(&mut scratch);

        // Same membership, edges rebuilt from scratch.
        let mut full = ch.clone();
        full.cond_valid = false;
        full.refresh_edges(&ctx.exec, &mut scratch);
        let full_ok = full.kahn(&mut scratch);

        assert_eq!(incr_ok, full_ok);
        let snap = |c: &Chromosome| -> Vec<Vec<u32>> {
            c.order
                .iter()
                .map(|&sid| {
                    let s = &c.slots[sid as usize];
                    c.edges[s.estart as usize..(s.estart + s.elen) as usize].to_vec()
                })
                .collect()
        };
        assert_eq!(snap(&ch), snap(&full));
    }
}
