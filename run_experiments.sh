#!/usr/bin/env bash
# Regenerate every table and figure of the paper. Results are printed and
# written as JSON under results/ (see EXPERIMENTS.md for the index).
# Pass --skip-checks to bypass the formatting/lint gate.
set -euo pipefail

if [[ "${1:-}" != "--skip-checks" ]]; then
  echo "== cargo fmt --check"
  cargo fmt --check
  echo "== cargo clippy --workspace -- -D warnings"
  cargo clippy --workspace -- -D warnings
fi

cargo build --release -p kfuse-bench

bins=(table1 fig3_motivating table5 fig5a fig5b table6 fig6 fig7_8 fig9 table7 smem_whatif fusion_efficiency ablation blocksize_study weak_scaling search_scaling)
for b in "${bins[@]}"; do
  echo
  echo "================================================================"
  echo "== $b"
  echo "================================================================"
  ./target/release/"$b"
done
