#!/usr/bin/env bash
# Regenerate every table and figure of the paper. Results are printed and
# written as JSON under results/ (see EXPERIMENTS.md for the index).
# Pass --skip-checks to bypass the formatting/lint gate.
# Pass `bench` to run only the search-throughput smoke stage: it re-runs
# the search scaling and warm-start studies and fails if either regresses
# more than 20% against the committed BENCH_search.json baseline.
# Pass `cache` to run only the plan-cache stage: cold solve, exact warm
# repeat, and perturbed near-repeat on synth60 and SCALE-LES, then the
# warm-start acceptance gates.
# Pass `serve` to run only the daemon stage: it executes the worked
# session from SERVING.md verbatim against a live kfused (cache-hit
# counters, the >=10x exact-repeat latency gate, queue backpressure,
# graceful shutdown).
set -euo pipefail

# Plan-cache smoke stage (DESIGN.md §16): each workload is solved cold
# into a fresh cache directory, repeated (the repeat must be served from
# the cache with zero GA generations), then re-solved after perturbing
# 10% of its kernels (the near-repeat must warm-start the GA from the
# remapped cached plan).
cache_stage() {
  local cache_tmp out
  cache_tmp=$(mktemp -d)
  for ex in synth60 scale-les; do
    local dir="$cache_tmp/cache-$ex"
    mkdir -p "$dir"
    ./target/release/kfuse example "$ex" > "$cache_tmp/$ex.json"
    echo "-- $ex: cold solve (populates the cache)"
    ./target/release/kfuse stats "$cache_tmp/$ex.json" --cache-dir "$dir" \
      | grep -E "^cache_(probes|hits|misses)"
    echo "-- $ex: warm repeat (exact hit, plan served without search)"
    out=$(./target/release/kfuse stats "$cache_tmp/$ex.json" --cache-dir "$dir")
    echo "$out" | grep -E "^(cache_hits|generations)"
    [[ $(echo "$out" | awk '$1 == "cache_hits" {print $2}') == 1 ]] \
      || { echo "FAIL: expected an exact cache hit on the repeat"; exit 1; }
    [[ $(echo "$out" | awk '$1 == "generations" {print $2}') == 0 ]] \
      || { echo "FAIL: a served plan must run no search"; exit 1; }
    echo "-- $ex: perturbed near-repeat (10% of kernels changed, GA warm-started)"
    python3 - "$cache_tmp/$ex.json" "$cache_tmp/$ex-perturbed.json" <<'PY'
import json, sys
p = json.load(open(sys.argv[1]))
for i, k in enumerate(p["kernels"]):
    if i % 10 == 0:
        st = k["segments"][0]["statements"][0]
        st["expr"] = {"Bin": {"op": "Add", "lhs": st["expr"], "rhs": {"Const": 1.0}}}
json.dump(p, open(sys.argv[2], "w"))
PY
    out=$(./target/release/kfuse stats "$cache_tmp/$ex-perturbed.json" --cache-dir "$dir")
    echo "$out" | grep -E "^(cache_probes|warm_starts|region_floor_skips)"
    [[ $(echo "$out" | awk '$1 == "warm_starts" {print $2}') == 1 ]] \
      || { echo "FAIL: expected a near-hit warm start on the perturbed repeat"; exit 1; }
  done
  rm -rf "$cache_tmp"
}

# Daemon smoke stage (DESIGN.md §17, SERVING.md): the documentation IS
# the test — the `serving-*` fenced blocks of SERVING.md are extracted
# and executed verbatim (daemon launch, the full worked Python session
# with its cache-hit and >=10x latency assertions, the shutdown
# epilogue), every `json` example block is checked to parse, and a
# queue-overflow burst must come back as structured `queue_full`
# rejections, not hangs.
serve_stage() {
  local serve_tmp
  serve_tmp=$(mktemp -d)
  echo "-- extracting serving-* blocks from SERVING.md"
  for block in serving-launch serving-session serving-epilogue; do
    awk "/^\\\`\\\`\\\`(bash|python) $block\$/{f=1;next} /^\\\`\\\`\\\`\$/{f=0} f" \
      SERVING.md > "$serve_tmp/$block"
    [[ -s "$serve_tmp/$block" ]] || { echo "FAIL: SERVING.md lost its $block block"; exit 1; }
  done
  echo "-- validating every json example block in SERVING.md"
  python3 - <<'PY'
import json, re
text = open("SERVING.md").read()
blocks = re.findall(r"^```json\n(.*?)^```$", text, re.S | re.M)
assert len(blocks) >= 10, f"expected the documented examples, found {len(blocks)}"
for b in blocks:
    json.loads(b)
print(f"   ok: {len(blocks)} json examples parse")
PY
  echo "-- worked session: launch daemon, drive SERVING.md session, drain"
  (
    cd "$(pwd)"
    source "$serve_tmp/serving-launch"
    python3 "$serve_tmp/serving-session"
    source "$serve_tmp/serving-epilogue"
  )
  echo "-- queue backpressure: burst into a 1-deep queue, expect queue_full"
  rm -rf /tmp/kfused-cache /tmp/kfused.sock
  ./target/release/kfuse serve --socket /tmp/kfused.sock \
    --workers 1 --queue-depth 1 &
  local pid=$!
  while [ ! -S /tmp/kfused.sock ]; do sleep 0.1; done
  python3 - <<'PY'
import json, socket
sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
sock.connect("/tmp/kfused.sock")
rfile = sock.makefile("r")
# One slow solve occupies the worker, one fills the queue slot; the rest
# of the burst must be refused immediately with the structured rejection.
burst = 8
for i in range(burst):
    sock.sendall((json.dumps(
        {"id": f"b{i}", "op": "solve", "example": "synth200", "budget_ms": 1500}
    ) + "\n").encode())
codes = [json.loads(rfile.readline()) for _ in range(burst)]
full = [r for r in codes if not r["ok"] and r["error"]["code"] == "queue_full"]
assert full, "a burst past queue capacity must yield queue_full rejections"
assert all("retry_after_ms" in r["error"] for r in full), full[0]
served = [r for r in codes if r["ok"] or r["error"]["code"] == "budget_exceeded"]
assert len(served) + len(full) == burst, codes
print(f"   ok: {len(full)} rejected with retry_after_ms, {len(served)} drained")
sock.sendall(b'{"id":"bye","op":"shutdown"}\n')
assert json.loads(rfile.readline())["ok"]
PY
  wait "$pid"
  rm -rf /tmp/kfused-cache "$serve_tmp"
}

if [[ "${1:-}" == "serve" ]]; then
  cargo build --release --bin kfuse
  serve_stage
  exit 0
fi

if [[ "${1:-}" == "bench" ]]; then
  cargo build --release -p kfuse-bench
  ./target/release/search_scaling --check-against BENCH_search.json
  exec ./target/release/warm_start --check-against BENCH_search.json
fi

if [[ "${1:-}" == "cache" ]]; then
  cargo build --release --bin kfuse
  cargo build --release -p kfuse-bench --bin warm_start
  cache_stage
  exec ./target/release/warm_start --check-against BENCH_search.json
fi

if [[ "${1:-}" != "--skip-checks" ]]; then
  echo "== cargo fmt --check"
  cargo fmt --check
  echo "== cargo clippy --workspace --all-targets -- -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings
  # Feature matrix: the workspace clippy above covers the default build
  # (batch on x trace on); the per-crate --no-default-features builds
  # cover the scalar fallback (batch off) and the compiled-out recorder
  # (trace off). Feature unification re-enables a default feature the
  # moment any selected crate asks for it, so each off-axis is linted at
  # the crate that owns the gate.
  echo "== clippy feature matrix: batch off (scalar fallback), trace off"
  cargo clippy -p kfuse-core --no-default-features --all-targets -- -D warnings
  cargo clippy -p kfuse-search --no-default-features --all-targets -- -D warnings
  cargo clippy -p kfuse-serve --no-default-features --all-targets -- -D warnings
  cargo clippy -p kfuse-obs --no-default-features --all-targets -- -D warnings
  echo "== cargo doc --no-deps (missing_docs gate)"
  RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet
fi

cargo build --release -p kfuse-bench
cargo build --release --bin kfuse

echo
echo "================================================================"
echo "== verify: independent plan verifier + CUDA lint + differential"
echo "================================================================"
# Every built-in workload suite must pass the static verifier (identity
# plan) and the CUDA lint of its generated code; the differential harness
# then cross-checks the verifier against both plan evaluators on 500+
# generated plans.
verify_tmp=$(mktemp -d)
trap 'rm -rf "$verify_tmp"' EXIT
for ex in quickstart rk3 fig3 scale-les homme suite; do
  ./target/release/kfuse example "$ex" > "$verify_tmp/$ex.json"
  echo "-- kfuse verify $ex"
  ./target/release/kfuse verify "$verify_tmp/$ex.json"
  echo "-- kfuse lint $ex"
  ./target/release/kfuse lint "$verify_tmp/$ex.json"
done
echo "-- kfuse lint rk3 (fused, seed 3)"
./target/release/kfuse lint "$verify_tmp/rk3.json" --fuse --seed 3
echo "-- differential harness (verifier vs both evaluators)"
cargo test --release -q --test differential
echo "-- synthesis differential (SoA vs legacy vs verifier, 3 GPUs)"
cargo test --release -q --test synth_differential

echo
echo "================================================================"
echo "== analyze: structured KF03 module analysis (identity + fused)"
echo "================================================================"
# The structured analyzer must accept the GPU modules generated for all
# built-in workloads (warnings allowed, errors fatal); the differential
# harness then proves the KF02 text lint is subsumed by the KF03 module
# analysis on a corpus of deliberately broken modules.
for ex in quickstart rk3 fig3 scale-les homme suite; do
  echo "-- kfuse analyze $ex"
  ./target/release/kfuse analyze "$verify_tmp/$ex.json" > /dev/null
done
echo "-- kfuse analyze fig3 (fused, seed 3)"
./target/release/kfuse analyze "$verify_tmp/fig3.json" --fuse --seed 3 > /dev/null
echo "-- lint-vs-analysis differential (KF02 subsumption, mutant corpus)"
cargo test --release -q --test analysis_differential

echo
echo "================================================================"
echo "== obs: traced solves on every workload + disabled-path guarantees"
echo "================================================================"
# Solve every built-in workload with tracing + metrics dumps on, then
# validate that each emitted file is well-formed JSON (chrome-trace with
# a traceEvents array, metrics with a counters object). python3 is the
# only JSON validator assumed on the host.
for ex in quickstart rk3 fig3 scale-les homme suite; do
  echo "-- kfuse solve $ex --trace"
  ./target/release/kfuse solve "$verify_tmp/$ex.json" --islands 2 \
    --trace "$verify_tmp/$ex-trace.json" --metrics "$verify_tmp/$ex-metrics.json" > /dev/null
  python3 - "$verify_tmp/$ex-trace.json" "$verify_tmp/$ex-metrics.json" <<'PY'
import json, sys
trace = json.load(open(sys.argv[1]))
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], "empty trace"
assert any(e.get("ph") == "X" for e in trace["traceEvents"]), "no complete spans"
metrics = json.load(open(sys.argv[2]))
assert "counters" in metrics and "gauges" in metrics, "malformed metrics dump"
print(f"   ok: {len(trace['traceEvents'])} trace events, "
      f"{sum(1 for v in metrics['counters'].values() if v)} live counters")
PY
done
echo "-- disabled-path allocation freedom (alloc_free)"
cargo test --release -q -p kfuse-search --test alloc_free
echo "-- obs crate with the trace feature compiled out"
cargo test --release -q -p kfuse-obs --no-default-features

bins=(table1 fig3_motivating table5 fig5a fig5b table6 fig6 fig7_8 fig9 table7 smem_whatif fusion_efficiency ablation blocksize_study weak_scaling)
for b in "${bins[@]}"; do
  echo
  echo "================================================================"
  echo "== $b"
  echo "================================================================"
  ./target/release/"$b"
done

echo
echo "================================================================"
echo "== cache: plan cache cold/warm/near-repeat (synth60, SCALE-LES)"
echo "================================================================"
cache_stage

echo
echo "================================================================"
echo "== serve: kfused daemon, SERVING.md worked session + backpressure"
echo "================================================================"
serve_stage

echo
echo "================================================================"
echo "== search_scaling (+ evals/s regression gate vs BENCH_search.json)"
echo "================================================================"
./target/release/search_scaling --check-against BENCH_search.json --trace

echo
echo "================================================================"
echo "== warm_start (+ warm-start acceptance gates vs BENCH_search.json)"
echo "================================================================"
./target/release/warm_start --check-against BENCH_search.json
