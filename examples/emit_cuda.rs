//! Generate the CUDA C for the Fig. 3 fusion — the automated version of
//! the paper's hand-written Listings 6 and 7.
//!
//! ```sh
//! cargo run --release --example emit_cuda
//! ```

use kernel_fusion::prelude::*;
use kfuse_codegen::{emit_kernel, CodegenOptions};
use kfuse_core::fuse::apply_plan;
use kfuse_workloads::motivating;

fn main() {
    let (program, _) = motivating::program([1280, 32, 32]);
    let gpu = GpuSpec::k20x();
    let (relaxed, ctx) = pipeline::prepare(&program, &gpu, FpPrecision::Double);
    let plan = motivating::fig3_plan();
    let specs = ctx.validate(&plan).expect("fig3 plan valid");
    let fused = apply_plan(&relaxed, &ctx.info, &ctx.exec, &plan, &specs).unwrap();

    let opts = CodegenOptions::default();
    println!("// ======== BEFORE FUSION: the five original kernels ========\n");
    for k in &relaxed.kernels {
        println!("{}", emit_kernel(&relaxed, k, &opts));
    }
    println!("// ======== AFTER FUSION: Kernel X and Kernel Y ========\n");
    for k in &fused.kernels {
        println!("{}", emit_kernel(&fused, k, &opts));
    }
}
