//! End-to-end fusion of the SCALE-LES model (the paper's headline
//! application): dependency analysis, expandable-array relaxation, HGGA
//! search, fusion, simulated speedup — plus a numerical equivalence check
//! of the winning plan on a reduced grid.
//!
//! ```sh
//! cargo run --release --example scale_les_fusion
//! ```

use kernel_fusion::prelude::*;
use kfuse_core::depgraph::{DependencyGraph, TouchClass};
use kfuse_core::efficiency::reducible_traffic;
use kfuse_core::fuse::apply_plan;
use kfuse_workloads::scale_les;

fn main() {
    let gpu = GpuSpec::k20x();
    let model = ProposedModel::default();

    // --- Static analysis on the full model (1280×32×32) ------------------
    let program = scale_les::full();
    let (relaxed, ctx) = pipeline::prepare(&program, &gpu, FpPrecision::Double);
    // Classify touches on the ORIGINAL program (relaxation renames the
    // expandable arrays away, that is its whole point).
    let dep = DependencyGraph::build(&program);
    let classes = |c: TouchClass| dep.classes.iter().filter(|&&x| x == c).count();
    println!(
        "SCALE-LES: {} kernels, {} arrays",
        program.kernels.len(),
        program.arrays.len()
    );
    println!(
        "  touch classes: {} read-only, {} read-write, {} expandable, {} write-only",
        classes(TouchClass::ReadOnly),
        classes(TouchClass::ReadWrite),
        classes(TouchClass::ExpandableReadWrite),
        classes(TouchClass::WriteOnly)
    );
    println!("  sharing sets: {}", dep.sharing_set_count());
    println!(
        "  redundant copies added by relaxation: {}",
        relaxed.arrays.len() - program.arrays.len()
    );
    let red = reducible_traffic(&ctx);
    println!(
        "  reducible GMEM traffic bound: {:.1}% (paper: 41%)",
        100.0 * red.fraction()
    );

    // --- Search + fusion ---------------------------------------------------
    let solver = HggaSolver::with_seed(17);
    let result = pipeline::run(&program, &gpu, FpPrecision::Double, &model, &solver).unwrap();
    println!(
        "  best plan: {} kernels fused into {} new kernels ({} calls total)",
        result.fused_kernel_count(),
        result.new_kernel_count(),
        result.fused.kernels.len()
    );
    println!(
        "  simulated runtime: {:.2} ms → {:.2} ms  (speedup {:.3}x; paper: 1.32x on K20X)",
        result.original_timing.total_s * 1e3,
        result.fused_timing.total_s * 1e3,
        result.speedup()
    );

    // --- Numerical equivalence on a reduced grid --------------------------
    // (The functional interpreter walks every site; 1280×32×32 × 64 arrays
    // would be needlessly slow for a smoke check.)
    let small = scale_les::full_on_grid([96, 32, 4]);
    let (small_relaxed, small_ctx) = pipeline::prepare(&small, &gpu, FpPrecision::Double);
    let out = solver.solve(&small_ctx, &model);
    let specs = small_ctx.validate(&out.plan).expect("plan valid");
    let fused = apply_plan(
        &small_relaxed,
        &small_ctx.info,
        &small_ctx.exec,
        &out.plan,
        &specs,
    )
    .expect("fusion applies");

    let mut reference = DeviceState::default_init(&small_relaxed);
    run_reference(&small_relaxed, &mut reference);
    let mut fused_state = DeviceState::default_init(&fused);
    run_block_mode(&fused, &mut fused_state);
    let mut max_diff = 0.0f64;
    for a in 0..small_relaxed.arrays.len() {
        max_diff = max_diff.max(reference.max_abs_diff(&fused_state, ArrayId(a as u32)));
    }
    assert_eq!(max_diff, 0.0, "fused SCALE-LES model diverged");
    println!("  numerical check on 96×32×4 grid: fused == reference ✓");
}
