//! Quickstart: build a small stencil program, run the full fusion pipeline
//! (Algorithm 1 of the paper), and verify that the fused program computes
//! exactly the same numbers as the original.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kernel_fusion::prelude::*;
use kfuse_ir::stencil::Offset;

fn main() {
    // A miniature "weather model": five kernels over a 256×128×16 grid.
    //   k0: velocity  V = M / ρ            (pointwise, shares ρ)
    //   k1: pressure  P = 0.4·ρT           (pointwise, shares ρ)
    //   k2: tendency  T' = ∇P              (radius-1 stencil on k1's output)
    //   k3: flux      F = V·(Q[+1] − Q)    (stencil on tracer Q)
    //   k4: update    Q += ∇F              (consumes k3's output)
    let mut pb = ProgramBuilder::new("quickstart", [256, 128, 16]);
    let [rho, m, rho_t, q] = pb.arrays(["RHO", "M", "RHOT", "Q"]);
    let [v, p, tend, f] = pb.arrays(["V", "P", "TEND", "F"]);

    let at = Expr::at;
    let ld = |a, di, dj| Expr::load(a, Offset::new(di, dj, 0));

    pb.kernel("velocity").write(v, at(m) / at(rho)).build();
    pb.kernel("pressure")
        .write(p, at(rho_t) * Expr::lit(0.4) + at(rho) * Expr::lit(287.0))
        .build();
    pb.kernel("tendency")
        .write(tend, (ld(p, 1, 0) - at(p)) + (ld(p, 0, 1) - at(p)))
        .build();
    pb.kernel("flux")
        .write(f, at(v) * (ld(q, 1, 0) - at(q)))
        .build();
    pb.kernel("update")
        .write(q, at(q) + (at(f) - ld(f, -1, 0)) * Expr::lit(0.1))
        .build();
    let program = pb.build();
    program.validate().expect("program is well-formed");

    // Algorithm 1: metadata → graphs → HGGA search → automatic fusion.
    let gpu = GpuSpec::k20x();
    let model = ProposedModel::default();
    let solver = HggaSolver::with_seed(42);
    let result = pipeline::run(&program, &gpu, FpPrecision::Double, &model, &solver)
        .expect("pipeline succeeds");

    println!(
        "program: {} kernels → {} calls",
        program.kernels.len(),
        result.fused.kernels.len()
    );
    for (gi, group) in result.plan.groups.iter().enumerate() {
        let names: Vec<&str> = group
            .iter()
            .map(|&k| result.relaxed.kernel(k).name.as_str())
            .collect();
        let spec = &result.specs[gi];
        println!(
            "  group {gi}: {:?}  (complex: {}, SMEM {} B/block)",
            names, spec.complex, spec.smem_bytes
        );
    }
    println!(
        "simulated speedup on {}: {:.3}x",
        gpu.name,
        result.speedup()
    );

    // Numerical verification: the fused program (executed block-wise with
    // the explicit SMEM model) must match the original reference run
    // bit for bit.
    let mut reference = DeviceState::default_init(&program);
    run_reference(&program, &mut reference);
    let mut fused_state = DeviceState::default_init(&result.fused);
    run_block_mode(&result.fused, &mut fused_state);
    for a in 0..program.arrays.len() {
        let a = ArrayId(a as u32);
        assert_eq!(
            reference.max_abs_diff(&fused_state, a),
            0.0,
            "array {} diverged",
            program.array(a).name
        );
    }
    println!(
        "numerical check: fused == reference for all {} arrays ✓",
        program.arrays.len()
    );
}
