//! Architecture exploration (§VI-E2): because the projection model is
//! codeless, "running the model" against a hypothetical device is enough
//! to study how future SMEM capacities would change fusion quality.
//!
//! ```sh
//! cargo run --release --example whatif_smem
//! ```

use kernel_fusion::prelude::*;
use kfuse_workloads::homme;

fn main() {
    let model = ProposedModel::default();
    let program = homme::full();

    println!("HOMME fusion quality vs per-SMX shared-memory capacity");
    println!(
        "{:>10} {:>10} {:>7} {:>6} {:>10}",
        "SMEM", "speedup", "fused", "new", "complex"
    );
    println!("{}", "-".repeat(48));

    for kib in [16u32, 32, 48, 64, 128] {
        let mut gpu = GpuSpec::hypothetical_smem(kib);
        gpu.name = format!("{kib}KiB");
        let result = pipeline::run(
            &program,
            &gpu,
            FpPrecision::Double,
            &model,
            &HggaSolver::with_seed(7),
        )
        .unwrap();
        let complex = result.specs.iter().filter(|s| s.complex).count();
        println!(
            "{:>7}KiB {:>9.3}x {:>7} {:>6} {:>10}",
            kib,
            result.speedup(),
            result.fused_kernel_count(),
            result.new_kernel_count(),
            complex
        );
    }
    println!();
    println!("(the paper's study ran SCALE-LES at 128/256 KiB, projecting 1.56x/1.65x;");
    println!(" see `cargo run -p kfuse-bench --bin smem_whatif` for that experiment)");
}
