//! Solver comparison on a small CloverLeaf-suite benchmark: exhaustive
//! enumeration (exact optimum), the HGGA, and the greedy best-merge
//! baseline — the §III-A argument that kernel fusion needs more than a
//! first-fit-style heuristic.
//!
//! ```sh
//! cargo run --release --example compare_solvers
//! ```

use kernel_fusion::prelude::*;
use kfuse_workloads::{SuiteParams, TestSuite};

fn main() {
    let params = SuiteParams {
        kernels: 12,
        arrays: 24,
        sharing_set: 4,
        thread_load: 8,
        ..SuiteParams::default()
    };
    let program = TestSuite::generate(&params);
    let gpu = GpuSpec::k20x();
    let model = ProposedModel::default();
    let (_, ctx) = pipeline::prepare(&program, &gpu, FpPrecision::Double);

    let identity_cost: f64 = ctx.info.kernels.iter().map(|k| k.runtime_s).sum();
    println!("benchmark {} ({} kernels)", params.name(), params.kernels);
    println!("unfused objective: {:.1} us", identity_cost * 1e6);
    println!();
    println!(
        "{:<12} {:>12} {:>9} {:>12} {:>12}",
        "solver", "objective", "gain", "evaluations", "time"
    );
    println!("{}", "-".repeat(62));

    let solvers: Vec<Box<dyn Solver>> = vec![
        Box::new(ExhaustiveSolver::default()),
        Box::new(HggaSolver::with_seed(1)),
        Box::new(GreedySolver),
    ];
    let mut best = f64::INFINITY;
    for solver in &solvers {
        let out = solver.solve(&ctx, &model);
        best = best.min(out.objective);
        println!(
            "{:<12} {:>9.1} us {:>8.1}% {:>12} {:>12?}",
            solver.name(),
            out.objective * 1e6,
            100.0 * (1.0 - out.objective / identity_cost),
            out.stats.evaluations,
            out.stats.elapsed
        );
    }
    println!();
    println!(
        "exact optimum: {:.1} us (exhaustive search is the ground truth)",
        best * 1e6
    );
}
