//! The Fig. 1 walkthrough: the hand-built 18-kernel RK3 routine of
//! SCALE-LES with the expandable `QFLX` array, showing how the relaxation
//! unlocks fusions that the raw dependency graph forbids.
//!
//! ```sh
//! cargo run --release --example rk3_fusion
//! ```

use kernel_fusion::prelude::*;
use kfuse_core::depgraph::{DependencyGraph, TouchClass};
use kfuse_core::exec_order::ExecOrderGraph;
use kfuse_workloads::scale_les;

fn main() {
    let grid = [128, 32, 8];
    let program = scale_les::rk_core(grid);
    println!(
        "RK3 core: {} kernels, {} arrays",
        program.kernels.len(),
        program.arrays.len()
    );

    // The QFLX pattern of §II-B1c: written by K_8 and K_12, read in between.
    let dep = DependencyGraph::build(&program);
    let qflx = program.arrays.iter().find(|a| a.name == "QFLX").unwrap().id;
    assert_eq!(dep.class(qflx), TouchClass::ExpandableReadWrite);
    println!(
        "QFLX writers: {:?}, readers: {:?}  (expandable read-write)",
        dep.writers[qflx.index()],
        dep.readers[qflx.index()]
    );

    // Before relaxation, K_10 (reads gen 1) must precede K_12 (writes gen 2).
    let exec_before = ExecOrderGraph::build(&program);
    let k10 = KernelId(9);
    let k12 = KernelId(11);
    assert!(
        exec_before.reaches(k10, k12),
        "WAR precedence before relaxation"
    );

    let relaxation = kfuse_core::relax::relax_expandable(&program);
    println!(
        "relaxation added {} redundant copies",
        relaxation.copies_added
    );
    let exec_after = ExecOrderGraph::build(&relaxation.program);
    assert!(
        exec_after.independent(k10, k12),
        "relaxation removes the K_10 → K_12 precedence"
    );
    println!("K_10 and K_12 are now order-independent ✓");

    // Relaxation preserves semantics exactly.
    let mut s_orig = DeviceState::default_init(&program);
    run_reference(&program, &mut s_orig);
    let mut s_relaxed = DeviceState::default_init(&relaxation.program);
    run_reference(&relaxation.program, &mut s_relaxed);
    for a in 0..program.arrays.len() {
        let a = ArrayId(a as u32);
        // Skip QFLX itself: after relaxation its generations live in
        // different arrays; the *final* generation stays in place.
        assert_eq!(
            s_orig.max_abs_diff(&s_relaxed, a),
            0.0,
            "array {} changed under relaxation",
            program.array(a).name
        );
    }
    println!("relaxed program computes identical results ✓");

    // Full pipeline on the relaxed routine.
    let gpu = GpuSpec::k20x();
    let model = ProposedModel::default();
    let result = pipeline::run(
        &program,
        &gpu,
        FpPrecision::Double,
        &model,
        &HggaSolver::with_seed(5),
    )
    .unwrap();
    println!(
        "fusion: {} kernels → {} calls, simulated speedup {:.3}x",
        program.kernels.len(),
        result.fused.kernels.len(),
        result.speedup()
    );
    for (gi, g) in result.plan.groups.iter().enumerate() {
        if g.len() >= 2 {
            let names: Vec<&str> = g
                .iter()
                .map(|&k| result.relaxed.kernel(k).name.as_str())
                .collect();
            println!("  new kernel {gi}: {names:?}");
        }
    }

    // And the fused routine still computes the same numbers.
    let mut fused_state = DeviceState::default_init(&result.fused);
    run_block_mode(&result.fused, &mut fused_state);
    for a in 0..program.arrays.len() {
        let a = ArrayId(a as u32);
        assert_eq!(s_orig.max_abs_diff(&fused_state, a), 0.0);
    }
    println!("fused RK3 core == reference ✓");
}
