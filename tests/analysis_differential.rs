//! Differential tests between the KF02xx CUDA-text lint and the KF03xx
//! structured module analysis, plus the golden byte-identity check of
//! the module printer against the frozen reference emitter.
//!
//! The contract pinned here (see `DESIGN.md` §14):
//!
//! 1. Modules built from accepted programs — the six built-in workloads
//!    and randomized synthetic programs, identity and fused — analyze
//!    with **zero errors**.
//! 2. The module pipeline (`build_module` → `print_module`) reproduces
//!    the frozen reference emitter byte for byte on those programs.
//! 3. Broken modules (dropped barriers, unguarded stores, unpadded
//!    tiles, widened tile offsets) trip the expected KF03 code, and
//!    every finding of the text lint on the printed mutant has a KF03
//!    counterpart: `KF0201→KF0306`, `KF0202/KF0203→KF0301`,
//!    `KF0204/KF0205→KF0305`. The structured analysis subsumes the
//!    text lint.
//! 4. The PR-2 missing-`__syncthreads()` bug (fig3 `Kern_A`) is caught
//!    structurally, without ever rendering text.

use kernel_fusion::prelude::*;
use kfuse_codegen::module::{AccessKind, CExpr, GpuModule, StageDecl, Stmt};
use kfuse_codegen::{build_module, print_module, CodegenOptions};
use kfuse_ir::StagingMedium;
use kfuse_verify::diag;
use kfuse_verify::{analyze_module, lint, Report};
use kfuse_workloads::synth::{generate, SynthConfig};
use proptest::prelude::*;

/// The six built-in workloads on test-sized grids.
fn builtins() -> Vec<(&'static str, Program)> {
    let quickstart = {
        let mut pb = ProgramBuilder::new("quickstart", [256, 128, 16]);
        let a = pb.array("A");
        let b = pb.array("B");
        let c = pb.array("C");
        pb.kernel("k0")
            .write(b, Expr::at(a) + Expr::lit(1.0))
            .build();
        pb.kernel("k1")
            .write(c, Expr::at(a) * Expr::lit(2.0))
            .build();
        pb.build()
    };
    let suite = kfuse_workloads::TestSuite::generate_on_grid(
        &kfuse_workloads::SuiteParams {
            kernels: 12,
            arrays: 24,
            ..Default::default()
        },
        [96, 32, 4],
        (32, 4),
    );
    vec![
        ("quickstart", quickstart),
        ("rk3", kfuse_workloads::scale_les::rk_core([96, 32, 4])),
        ("fig3", kfuse_workloads::motivating::program([64, 16, 4]).0),
        (
            "scale-les",
            kfuse_workloads::scale_les::full_on_grid([96, 32, 2]),
        ),
        ("homme", kfuse_workloads::homme::full_on_grid([52, 26, 4])),
        ("suite", suite),
    ]
}

fn quick_solver(seed: u64) -> HggaSolver {
    HggaSolver {
        config: HggaConfig {
            population: 40,
            max_generations: 120,
            stall_generations: 25,
            seed,
            ..HggaConfig::default()
        },
    }
}

/// Run the full pipeline and return the fused program.
fn fuse(p: &Program, seed: u64) -> Program {
    let gpu = GpuSpec::k20x();
    let model = ProposedModel::default();
    pipeline::run(p, &gpu, FpPrecision::Double, &model, &quick_solver(seed))
        .expect("pipeline succeeds")
        .fused
}

// ---------------------------------------------------------------------
// 1. Accepted programs analyze clean.
// ---------------------------------------------------------------------

#[test]
fn builtin_modules_analyze_without_errors() {
    let opts = CodegenOptions::default();
    for (name, p) in builtins() {
        let fused = fuse(&p, 3);
        for (tag, prog) in [("identity", &p), ("fused", &fused)] {
            let m = build_module(prog, &opts);
            let r = analyze_module(&m);
            assert_eq!(
                r.error_count(),
                0,
                "{name}/{tag} module has analysis errors:\n{}",
                r.render_human()
            );
        }
    }
}

// ---------------------------------------------------------------------
// 2. Golden byte-identity: module printer == frozen reference emitter.
// ---------------------------------------------------------------------

#[test]
fn printer_is_byte_identical_to_reference_on_builtins() {
    for opts in [
        CodegenOptions::default(),
        CodegenOptions {
            double_precision: false,
            restrict: false,
        },
    ] {
        for (name, p) in builtins() {
            let fused = fuse(&p, 3);
            for (tag, prog) in [("identity", &p), ("fused", &fused)] {
                let via_module = print_module(&build_module(prog, &opts));
                let reference = kfuse_codegen::reference::emit_program_reference(prog, &opts);
                assert_eq!(
                    via_module, reference,
                    "{name}/{tag}: module printer diverged from the reference emitter"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// 4. fig3 Kern_A regression: dropped planned barrier caught
//    structurally (no text lint involved).
// ---------------------------------------------------------------------

#[test]
fn fig3_dropped_segment_barrier_is_caught_structurally() {
    let p = kfuse_workloads::motivating::program([64, 16, 4]).0;
    let fused = fuse(&p, 3);
    let mut m = build_module(&fused, &CodegenOptions::default());
    let k = m
        .kernels
        .iter_mut()
        .find(|k| k.segment_count() >= 2 && k.planned_barrier_count() > 0)
        .expect("the fig3 plan fuses dependent kernels into a Kern_A-style kernel");
    // The PR-2 emitter bug produced Kern_A with no `__syncthreads()` at
    // all between the producer's tile store and the consumer's neighbor
    // reads; model it by dropping every barrier in that kernel. (The
    // planned `SegmentBoundary` barrier alone is not enough to break
    // it: the dirty-tile barrier inside the first segment still
    // separates the write from every read.)
    let before = k.body.len();
    k.body.retain(|s| !matches!(s, Stmt::Barrier { .. }));
    assert!(k.body.len() < before, "barriers were dropped");
    let r = analyze_module(&m);
    assert!(
        r.has_code(diag::KF_RACE_WRITE_READ),
        "missing inter-segment barrier must surface as KF0301:\n{}",
        r.render_human()
    );
    assert!(r.error_count() > 0);
}

// ---------------------------------------------------------------------
// 3. Mutation corpus + KF02/KF03 subsumption differential.
// ---------------------------------------------------------------------

fn small_config(seed: u64, kernels: usize) -> SynthConfig {
    SynthConfig {
        name: format!("diff_{seed}"),
        kernels,
        arrays: kernels * 2,
        data_copies: 2,
        sharing_set: 3,
        thread_load: 4,
        kinship: 3,
        grid: [64, 16, 2],
        block: (32, 4),
        dep_prob: 0.5,
        reads_per_kernel: 2,
        pointwise_prob: 0.3,
        sync_interval: None,
        seed,
    }
}

/// Remove every `__syncthreads()` from every kernel body.
fn drop_barriers(m: &mut GpuModule) -> bool {
    let mut changed = false;
    for k in &mut m.kernels {
        let before = k.body.len();
        k.body.retain(|s| !matches!(s, Stmt::Barrier { .. }));
        changed |= k.body.len() < before;
    }
    changed
}

/// Strip the `if (i < NX && j < NY)` guard from every global store.
fn unguard_stores(m: &mut GpuModule) -> bool {
    let mut changed = false;
    for k in &mut m.kernels {
        for s in &mut k.body {
            if let Stmt::Compute(c) = s {
                if let Some(gs) = &mut c.global_store {
                    changed |= gs.guarded;
                    gs.guarded = false;
                }
            }
        }
    }
    changed
}

/// Drop the bank-conflict padding column from every SMEM tile.
fn unpad_tiles(m: &mut GpuModule) -> bool {
    let mut changed = false;
    for k in &mut m.kernels {
        for st in &mut k.stages {
            if st.medium == StagingMedium::Smem && st.padded {
                st.padded = false;
                changed = true;
            }
        }
    }
    changed
}

/// Push every provably-in-tile access one cell past its declared halo.
fn widen_tile_offsets(m: &mut GpuModule) -> bool {
    fn widen(expr: &mut CExpr, stages: &[StageDecl]) -> bool {
        match expr {
            CExpr::Const(_) => false,
            CExpr::Bin { lhs, rhs, .. } => {
                let l = widen(lhs, stages);
                let r = widen(rhs, stages);
                l || r
            }
            CExpr::Access(a) => {
                if let AccessKind::Tile { stage } = a.kind {
                    a.offset.di = (stages[stage].halo + 1) as i8;
                    true
                } else {
                    false
                }
            }
        }
    }
    let mut changed = false;
    for k in &mut m.kernels {
        for s in &mut k.body {
            if let Stmt::Compute(c) = s {
                changed |= widen(&mut c.expr, &k.stages);
            }
        }
    }
    changed
}

/// The KF02 → KF03 subsumption map: every text-lint finding on a
/// printed module must have a structured counterpart in the analysis
/// report of the same module.
fn assert_lint_subsumed(linted: &Report, analysis: &Report) {
    for d in &linted.diagnostics {
        let counterpart = match d.code {
            "KF0201" => "KF0306",
            "KF0202" | "KF0203" => "KF0301",
            "KF0204" | "KF0205" => "KF0305",
            _ => continue,
        };
        assert!(
            analysis.has_code(counterpart),
            "lint finding {} (`{}`) has no {} counterpart in:\n{}",
            d.code,
            d.explanation,
            counterpart,
            analysis.render_human()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized synthetic programs produce modules that analyze
    /// without errors, identity and fused.
    #[test]
    fn synth_modules_analyze_without_errors(seed in 0u64..1000, kernels in 4usize..12) {
        let p = generate(&small_config(seed, kernels));
        let fused = fuse(&p, seed);
        for prog in [&p, &fused] {
            let m = build_module(prog, &CodegenOptions::default());
            let r = analyze_module(&m);
            prop_assert!(
                r.error_count() == 0,
                "synth module has analysis errors:\n{}",
                r.render_human()
            );
        }
    }

    /// Each mutation class trips its expected KF03 code, and the text
    /// lint on the printed mutant is fully subsumed by the analysis.
    #[test]
    fn mutated_modules_trip_kf03_and_subsume_kf02(
        seed in 0u64..500,
        kernels in 4usize..12,
        mutation in 0usize..4,
    ) {
        let p = generate(&small_config(seed, kernels));
        let mut m = build_module(&p, &CodegenOptions::default());
        let (changed, expected) = match mutation {
            0 => (drop_barriers(&mut m), diag::KF_RACE_WRITE_READ),
            1 => (unguard_stores(&mut m), diag::KF_BOUNDS_UNPROVEN),
            2 => (unpad_tiles(&mut m), diag::KF_TILE_UNPADDED),
            _ => (widen_tile_offsets(&mut m), diag::KF_BOUNDS_UNPROVEN),
        };
        if changed {
            let analysis = analyze_module(&m);
            prop_assert!(
                analysis.has_code(expected),
                "mutation {mutation} did not trip {expected}:\n{}",
                analysis.render_human()
            );
            let linted = lint(&print_module(&m));
            assert_lint_subsumed(&linted, &analysis);
        }
    }

    /// The subsumption also holds with all mutations applied at once.
    #[test]
    fn combined_mutants_keep_lint_subsumed(seed in 0u64..200, kernels in 4usize..10) {
        let p = generate(&small_config(seed, kernels));
        let mut m = build_module(&p, &CodegenOptions::default());
        let changed = drop_barriers(&mut m)
            | unguard_stores(&mut m)
            | unpad_tiles(&mut m)
            | widen_tile_offsets(&mut m);
        if changed {
            let analysis = analyze_module(&m);
            let linted = lint(&print_module(&m));
            assert_lint_subsumed(&linted, &analysis);
        }
    }
}
