//! Integration tests for the Fig. 3 motivating example: the exact structure
//! of the X and Y fusions, model ordering, and coherence-hazard detection.

use kernel_fusion::prelude::*;
use kfuse_core::fuse::apply_plan;
use kfuse_core::spec::GroupSpec;
use kfuse_ir::StagingMedium;
use kfuse_workloads::motivating;

#[test]
fn fig3_fusion_reduces_both_calls_and_traffic() {
    let gpu = GpuSpec::k20x();
    let (program, _) = motivating::program([256, 64, 8]);
    let (relaxed, ctx) = pipeline::prepare(&program, &gpu, FpPrecision::Double);
    let plan = motivating::fig3_plan();
    let specs = ctx.validate(&plan).unwrap();
    let fused = apply_plan(&relaxed, &ctx.info, &ctx.exec, &plan, &specs).unwrap();
    assert_eq!(fused.kernels.len(), 2);

    let orig = kfuse_sim::simulate_program(&gpu, &relaxed, FpPrecision::Double);
    let new = kfuse_sim::simulate_program(&gpu, &fused, FpPrecision::Double);
    assert!(
        new.total_bytes(8) < orig.total_bytes(8),
        "fusion must reduce GMEM traffic"
    );
}

#[test]
fn kernel_x_uses_halo_smem_and_barrier() {
    let (program, arrays) = motivating::program([256, 64, 8]);
    let gpu = GpuSpec::k20x();
    let (relaxed, ctx) = pipeline::prepare(&program, &gpu, FpPrecision::Double);
    let plan = motivating::fig3_plan();
    let specs = ctx.validate(&plan).unwrap();
    let fused = apply_plan(&relaxed, &ctx.info, &ctx.exec, &plan, &specs).unwrap();

    let x = fused
        .kernels
        .iter()
        .find(|k| k.sources().contains(&KernelId(0)))
        .expect("kernel X exists");
    // A is staged in SMEM with at least one halo layer (as in Listing 6).
    let st = x
        .staging
        .iter()
        .find(|s| s.array == arrays.a)
        .expect("A staged in X");
    assert_eq!(st.medium, StagingMedium::Smem);
    assert!(st.halo >= 1);
    // Kern_B's segment waits on a barrier.
    assert!(x.segments.iter().skip(1).any(|s| s.barrier_before));
}

#[test]
fn kernel_y_stages_t_q_v_like_listing7() {
    let (program, arrays) = motivating::program([256, 64, 8]);
    let gpu = GpuSpec::k20x();
    let (_, ctx) = pipeline::prepare(&program, &gpu, FpPrecision::Double);
    let spec = GroupSpec::synthesize(&ctx.info, &[KernelId(2), KernelId(3), KernelId(4)]);
    for a in [arrays.t, arrays.q, arrays.v] {
        let p = spec.pivot(a).expect("pivot staged");
        assert!(p.smem, "Listing 7 stages s_T, s_Q, s_V in SMEM");
        assert!(!p.produced, "T, Q, V are clean inputs");
    }
    assert!(!spec.complex, "Y is a simple fusion (no barrier)");
}

#[test]
fn model_ordering_matches_paper_structure() {
    // Roofline ≤ simple ≈ proposed ≤ original-sum relationships on Y.
    let (program, _) = motivating::program([1280, 32, 32]);
    let gpu = GpuSpec::k20x();
    let (_, ctx) = pipeline::prepare(&program, &gpu, FpPrecision::Double);
    let group = [KernelId(2), KernelId(3), KernelId(4)];
    let spec = GroupSpec::synthesize(&ctx.info, &group);

    let roof = RooflineModel.project(&ctx.info, &spec);
    let simple = SimpleModel.project(&ctx.info, &spec);
    let proposed = ProposedModel::default().project(&ctx.info, &spec);
    let original = ctx.info.original_sum(&group);

    assert!(roof <= simple * 1.05, "roofline is the most optimistic");
    assert!(roof <= proposed, "proposed accounts for more overheads");
    assert!(proposed < original * 1.2, "projection within sane range");
}

#[test]
fn suppressed_halo_breaks_coherence_observably() {
    // Take the valid fused program, strip Kernel X's halo, and verify the
    // block-mode interpreter detects the §II-D2 hazard.
    let (program, arrays) = motivating::program([64, 16, 4]);
    let gpu = GpuSpec::k20x();
    let (relaxed, ctx) = pipeline::prepare(&program, &gpu, FpPrecision::Double);
    let plan = motivating::fig3_plan();
    let specs = ctx.validate(&plan).unwrap();
    let mut fused = apply_plan(&relaxed, &ctx.info, &ctx.exec, &plan, &specs).unwrap();

    let mut reference = DeviceState::default_init(&relaxed);
    run_reference(&relaxed, &mut reference);

    // Healthy fusion matches.
    let mut ok_state = DeviceState::default_init(&fused);
    run_block_mode(&fused, &mut ok_state);
    assert_eq!(reference.max_abs_diff(&ok_state, arrays.mx), 0.0);

    // Sabotage: drop the halo layers on A inside Kernel X.
    for k in &mut fused.kernels {
        for st in &mut k.staging {
            if st.array == arrays.a {
                st.halo = 0;
            }
        }
    }
    let mut bad_state = DeviceState::default_init(&fused);
    run_block_mode(&fused, &mut bad_state);
    let diff = reference.max_abs_diff(&bad_state, arrays.mx);
    assert!(diff > 0.0, "halo suppression must corrupt boundary threads");
}
