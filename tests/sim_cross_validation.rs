//! Cross-validation of the two timing models: the closed-form wave
//! simulator (used for all "measured" numbers) against the event-driven
//! processor-sharing simulator, on the real workload models. Agreement
//! bounds the error introduced by the wave abstraction.

use kernel_fusion::prelude::*;
use kfuse_sim::simulate_program_events;
use kfuse_workloads::{cloverleaf, homme, scale_les};

fn cross_validate(p: &Program, tolerance: f64) {
    let gpu = GpuSpec::k20x();
    let wave = simulate_program(&gpu, p, FpPrecision::Double);
    let events = simulate_program_events(&gpu, p, FpPrecision::Double);
    assert_eq!(wave.kernels.len(), events.len());
    for (w, e) in wave.kernels.iter().zip(&events) {
        assert!(w.time_s.is_finite() && e.time_s.is_finite(), "{}", w.name);
        let rel = (w.time_s - e.time_s).abs() / w.time_s.max(e.time_s);
        assert!(
            rel <= tolerance,
            "{}: wave {:.3e}s vs events {:.3e}s ({:.0}% apart)",
            w.name,
            w.time_s,
            e.time_s,
            rel * 100.0
        );
    }
    let wave_total = wave.total_s;
    let event_total: f64 = events.iter().map(|e| e.time_s).sum();
    let rel = (wave_total - event_total).abs() / wave_total;
    assert!(rel <= tolerance, "program totals {:.0}% apart", rel * 100.0);
}

#[test]
fn rk3_core_models_agree() {
    cross_validate(&scale_les::rk_core([1280, 32, 32]), 0.35);
}

#[test]
fn cloverleaf_models_agree() {
    cross_validate(&cloverleaf::timestep([960, 960, 1]), 0.35);
}

#[test]
fn homme_models_agree() {
    cross_validate(&homme::full(), 0.35);
}

#[test]
fn fused_scale_les_models_agree() {
    let gpu = GpuSpec::k20x();
    let program = scale_les::full_on_grid([640, 32, 16]);
    let model = ProposedModel::default();
    let solver = HggaSolver {
        config: HggaConfig {
            population: 40,
            max_generations: 100,
            stall_generations: 20,
            seed: 5,
            ..HggaConfig::default()
        },
    };
    let r = pipeline::run(&program, &gpu, FpPrecision::Double, &model, &solver).unwrap();
    cross_validate(&r.fused, 0.4);
}
