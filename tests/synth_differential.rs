//! Differential testing of group synthesis: the allocation-free SoA path
//! (`SynthTables::synthesize_into`) against the materializing oracle
//! (`GroupSpec::synthesize`) and the independent verifier's re-derivation
//! (`PlanChecker::derive_spec`), field-for-field, plus bitwise agreement
//! of every performance model's `project` and `project_view` and
//! variant-for-variant agreement of `check_group` and `check_group_with`.
//!
//! Groups are sampled with no feasibility filter, so the sweep covers
//! degenerate shapes (singletons, disconnected members, capacity
//! violations) as well as profitable fusions, across all three GPU specs.

use kernel_fusion::prelude::*;
use kfuse_core::spec::GroupSpec;
use kfuse_core::synth::SynthScratch;
use kfuse_verify::PlanChecker;
use kfuse_workloads::synth::{generate, SynthConfig};
use proptest::prelude::*;

fn small_config(seed: u64, kernels: usize) -> SynthConfig {
    SynthConfig {
        name: format!("synthdiff_{seed}"),
        kernels,
        arrays: kernels * 2,
        data_copies: 2,
        sharing_set: 3,
        thread_load: 4,
        kinship: 3,
        grid: [64, 16, 2],
        block: (32, 4),
        dep_prob: 0.5,
        reads_per_kernel: 2,
        pointwise_prob: 0.3,
        sync_interval: None,
        seed,
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random group of 1–6 distinct kernels out of `n`.
fn random_group(n: usize, state: &mut u64) -> Vec<KernelId> {
    let len = 1 + (splitmix64(state) % 6) as usize;
    let mut g: Vec<KernelId> = (0..len)
        .map(|_| KernelId((splitmix64(state) % n as u64) as u32))
        .collect();
    g.sort_unstable();
    g.dedup();
    g
}

fn gpus() -> [GpuSpec; 3] {
    [GpuSpec::k20x(), GpuSpec::k40(), GpuSpec::gtx750ti()]
}

fn assert_specs_eq(a: &GroupSpec, b: &GroupSpec, what: &str) {
    assert_eq!(a.members, b.members, "{what}: members");
    assert_eq!(a.pivots, b.pivots, "{what}: pivots");
    assert_eq!(a.barrier_before, b.barrier_before, "{what}: barrier_before");
    assert_eq!(a.smem_bytes, b.smem_bytes, "{what}: smem_bytes");
    assert_eq!(a.projected_regs, b.projected_regs, "{what}: projected_regs");
    assert_eq!(a.flops, b.flops, "{what}: flops");
    assert_eq!(a.halo_bytes, b.halo_bytes, "{what}: halo_bytes");
    assert_eq!(a.ro_bytes, b.ro_bytes, "{what}: ro_bytes");
    assert_eq!(a.active_threads, b.active_threads, "{what}: active_threads");
    assert_eq!(a.complex, b.complex, "{what}: complex");
}

fn models() -> Vec<Box<dyn PerfModel>> {
    vec![
        Box::new(RooflineModel),
        Box::new(SimpleModel),
        Box::new(ProposedModel::default()),
    ]
}

fn check_program_on(gpu: &GpuSpec, seed: u64, kernels: usize) {
    let p = generate(&small_config(seed, kernels));
    let (_, ctx) = pipeline::prepare(&p, gpu, FpPrecision::Double);
    let checker = PlanChecker::new(&ctx.info);
    let models = models();
    let mut scratch = SynthScratch::new();
    let mut state = seed ^ 0x5EED_CAFE;
    for _ in 0..32 {
        let group = random_group(ctx.n_kernels(), &mut state);
        let legacy = GroupSpec::synthesize(&ctx.info, &group);

        // The SoA sweep materializes to the identical spec...
        let view = ctx.synth.synthesize_into(&ctx.info, &group, &mut scratch);
        assert_specs_eq(
            &view.to_spec(),
            &legacy,
            &format!("SoA vs legacy, {} {group:?}", gpu.name),
        );
        // ...and every model projects it bitwise identically.
        for m in &models {
            let spec_t = m.project(&ctx.info, &legacy);
            let view_t = m.project_view(&ctx.info, &view);
            assert_eq!(
                spec_t.to_bits(),
                view_t.to_bits(),
                "{} project vs project_view, {} {group:?}",
                m.name(),
                gpu.name
            );
        }

        // The independent verifier re-derives the same spec.
        let derived = checker.derive_spec(&group);
        assert_specs_eq(
            &derived,
            &legacy,
            &format!("verifier vs legacy, {} {group:?}", gpu.name),
        );

        // Constraint checking agrees variant-for-variant.
        let old = ctx.check_group(&group, 7).map(|_| ());
        let new = ctx.check_group_with(&group, 7, &mut scratch).map(|_| ());
        match (old, new) {
            (Ok(()), Ok(())) => {}
            (Err(a), Err(b)) => assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "check_group error divergence on {} {group:?}",
                gpu.name
            ),
            (a, b) => panic!(
                "check_group feasibility divergence on {} {group:?}: legacy {a:?} vs SoA {b:?}",
                gpu.name
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// SoA == legacy == verifier over random programs, all three GPUs.
    #[test]
    fn synthesis_paths_agree(seed in 0u64..10_000, kernels in 4usize..16) {
        for gpu in gpus() {
            check_program_on(&gpu, seed, kernels);
        }
    }
}

/// A handcrafted fixture covering all four touch classes (read-only
/// shared input, produced read-write pivot consumed at a radius, an
/// expandable double-written array, and write-only outputs) swept over
/// every subset of its kernels on every GPU.
#[test]
fn all_touch_classes_all_subsets_all_gpus() {
    let mut pb = ProgramBuilder::new("touchmix", [64, 32, 4]);
    let a = pb.array("A"); // read-only, shared by all
    let b = pb.array("B"); // read-write: produced by k0, consumed at radius
    let q = pb.array("Q"); // expandable: written by k0 and k2
    let [w0, w1, w2] = pb.arrays(["W0", "W1", "W2"]); // write-only outputs
    pb.kernel("k0")
        .write(b, Expr::at(a) + Expr::lit(1.0))
        .write(q, Expr::at(a) * Expr::lit(2.0))
        .build();
    pb.kernel("k1")
        .write(
            w0,
            Expr::load(b, kfuse_ir::stencil::Offset::new(1, 0, 0)) + Expr::at(q),
        )
        .build();
    pb.kernel("k2")
        .write(q, Expr::at(a) - Expr::lit(1.0))
        .write(w1, Expr::at(b))
        .build();
    pb.kernel("k3")
        .write(w2, Expr::load(q, kfuse_ir::stencil::Offset::new(-1, 0, 0)))
        .build();
    let p = pb.build();

    for gpu in gpus() {
        let (_, ctx) = pipeline::prepare(&p, &gpu, FpPrecision::Double);
        let checker = PlanChecker::new(&ctx.info);
        let mut scratch = SynthScratch::new();
        let n = ctx.n_kernels();
        for mask in 1u32..(1 << n) {
            let group: Vec<KernelId> = (0..n)
                .filter(|k| mask & (1 << k) != 0)
                .map(|k| KernelId(k as u32))
                .collect();
            let legacy = GroupSpec::synthesize(&ctx.info, &group);
            let view = ctx.synth.synthesize_into(&ctx.info, &group, &mut scratch);
            assert_specs_eq(
                &view.to_spec(),
                &legacy,
                &format!("fixture SoA, {} mask {mask:b}", gpu.name),
            );
            assert_specs_eq(
                &checker.derive_spec(&group),
                &legacy,
                &format!("fixture verifier, {} mask {mask:b}", gpu.name),
            );
        }
    }
}
