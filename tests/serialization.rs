//! JSON round-trip tests for the public data types (the CLI's program
//! exchange format).

use kernel_fusion::prelude::*;
use kfuse_core::metadata::ProgramInfo;
use kfuse_workloads::{motivating, scale_les, SuiteParams, TestSuite};

#[test]
fn program_roundtrips_through_json() {
    let p = scale_les::rk_core([96, 32, 4]);
    let json = serde_json::to_string(&p).unwrap();
    let back: Program = serde_json::from_str(&json).unwrap();
    assert_eq!(p, back);
    assert!(back.validate().is_ok());
}

#[test]
fn fused_program_roundtrips_with_staging_and_syncs() {
    let (p, _) = motivating::program([96, 32, 4]);
    let gpu = GpuSpec::k20x();
    let model = ProposedModel::default();
    let r = pipeline::run(
        &p,
        &gpu,
        FpPrecision::Double,
        &model,
        &HggaSolver::with_seed(3),
    )
    .unwrap();
    let json = serde_json::to_string(&r.fused).unwrap();
    let back: Program = serde_json::from_str(&json).unwrap();
    assert_eq!(r.fused, back);
}

#[test]
fn plan_roundtrips() {
    let plan = FusionPlan::new(vec![vec![KernelId(0), KernelId(2)], vec![KernelId(1)]]);
    let json = serde_json::to_string(&plan).unwrap();
    let back: FusionPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(plan, back);
}

#[test]
fn program_info_serializes() {
    let p = TestSuite::generate_on_grid(
        &SuiteParams {
            kernels: 10,
            arrays: 20,
            ..SuiteParams::default()
        },
        [96, 32, 4],
        (32, 4),
    );
    let info = ProgramInfo::extract(&p, &GpuSpec::k20x(), FpPrecision::Double);
    let json = serde_json::to_string(&info).unwrap();
    let back: ProgramInfo = serde_json::from_str(&json).unwrap();
    assert_eq!(info.kernels.len(), back.kernels.len());
    assert_eq!(info.epochs, back.epochs);
}

#[test]
fn legacy_program_json_without_host_syncs_loads() {
    // host_syncs carries #[serde(default)]: programs serialized before the
    // field existed must still parse.
    let p = scale_les::rk_core([96, 32, 4]);
    let mut v: serde_json::Value = serde_json::to_value(&p).unwrap();
    v.as_object_mut().unwrap().remove("host_syncs");
    let back: Program = serde_json::from_value(v).unwrap();
    assert!(back.host_syncs.is_empty());
    assert!(back.validate().is_ok());
}

#[test]
fn gpu_spec_roundtrips() {
    for gpu in [GpuSpec::k20x(), GpuSpec::k40(), GpuSpec::gtx750ti()] {
        let json = serde_json::to_string(&gpu).unwrap();
        let back: GpuSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(gpu, back);
    }
}
