//! Integration tests of the Fig. 4 constraint system across crates:
//! failure injection and precise diagnostics.

use kernel_fusion::prelude::*;
use kfuse_core::plan::PlanError;
use kfuse_ir::stencil::Offset;
use kfuse_workloads::scale_les;

/// A chain k0 → k1 → k2 plus an unrelated pair k3, k4 in another sharing
/// component, separated by a host sync before k3.
fn program_with_structure() -> Program {
    let mut pb = ProgramBuilder::new("structured", [96, 32, 4]);
    let [a, b, c, d] = pb.arrays(["A", "B", "C", "D"]);
    let [x, y, z] = pb.arrays(["X", "Y", "Z"]);
    pb.kernel("k0")
        .write(b, Expr::at(a) + Expr::lit(1.0))
        .build();
    pb.kernel("k1")
        .write(c, Expr::load(b, Offset::new(1, 0, 0)))
        .build();
    pb.kernel("k2")
        .write(d, Expr::at(c) * Expr::lit(2.0))
        .build();
    pb.host_sync();
    pb.kernel("k3")
        .write(y, Expr::at(x) + Expr::lit(3.0))
        .build();
    pb.kernel("k4")
        .write(z, Expr::at(x) - Expr::lit(1.0))
        .build();
    pb.build()
}

fn ctx() -> (Program, PlanContext) {
    pipeline::prepare(
        &program_with_structure(),
        &GpuSpec::k20x(),
        FpPrecision::Double,
    )
}

#[test]
fn path_closure_violation_names_the_sandwiched_kernel() {
    let (_, ctx) = ctx();
    let plan = FusionPlan::new(vec![
        vec![KernelId(0), KernelId(2)],
        vec![KernelId(1)],
        vec![KernelId(3)],
        vec![KernelId(4)],
    ]);
    match ctx.validate(&plan) {
        Err(PlanError::PathClosure { violator, .. }) => assert_eq!(violator, KernelId(1)),
        other => panic!("expected path-closure violation, got {other:?}"),
    }
}

#[test]
fn kinship_violation_rejects_cross_component_groups() {
    let (_, ctx) = ctx();
    // k2 (chain component) with k4 (x/y/z component): kinship zero.
    // Note both sit after... k2 is before the sync; sync check fires first.
    let plan = FusionPlan::new(vec![
        vec![KernelId(0)],
        vec![KernelId(1)],
        vec![KernelId(2), KernelId(4)],
        vec![KernelId(3)],
    ]);
    match ctx.validate(&plan) {
        Err(PlanError::SyncSplit { .. }) | Err(PlanError::Kinship { .. }) => {}
        other => panic!("expected kinship/sync violation, got {other:?}"),
    }
}

#[test]
fn host_sync_blocks_fusion_across_epochs() {
    let (_, ctx) = ctx();
    assert_eq!(ctx.info.epochs, vec![0, 0, 0, 1, 1]);
    // k3+k4 fuse fine (same epoch, share X)...
    let ok = FusionPlan::new(vec![
        vec![KernelId(0)],
        vec![KernelId(1)],
        vec![KernelId(2)],
        vec![KernelId(3), KernelId(4)],
    ]);
    assert!(ctx.validate(&ok).is_ok());
}

#[test]
fn smem_overflow_is_reported_with_sizes() {
    // Many wide-stencil kernels sharing many arrays: force a group whose
    // staging exceeds 48 KiB.
    let mut pb = ProgramBuilder::new("smem_heavy", [512, 256, 4]);
    pb.launch(32, 32); // 1024 threads → 8 KiB per DP pivot tile
    let inputs: Vec<ArrayId> = (0..8).map(|i| pb.array(format!("I{i}"))).collect();
    for i in 0..8 {
        let out = pb.array(format!("O{i}"));
        let mut e = Expr::lit(0.0);
        for &inp in &inputs {
            e = e + Expr::at(inp) + Expr::load(inp, Offset::new(-1, 0, 0));
        }
        pb.kernel(format!("k{i}")).write(out, e).build();
    }
    let p = pb.build();
    let (_, ctx) = pipeline::prepare(&p, &GpuSpec::k20x(), FpPrecision::Double);
    // 8 shared pivots × (34×34)×8B ≈ 72 KiB > 48 KiB.
    let plan = FusionPlan::new(vec![(0..8).map(|i| KernelId(i as u32)).collect()]);
    match ctx.validate(&plan) {
        Err(PlanError::SmemOverflow {
            bytes, capacity, ..
        }) => {
            assert!(bytes > capacity);
            assert_eq!(capacity, 48 * 1024);
        }
        other => panic!("expected SMEM overflow, got {other:?}"),
    }
    // The same group fits the hypothetical 128 KiB device.
    let (_, ctx128) = pipeline::prepare(&p, &GpuSpec::hypothetical_smem(128), FpPrecision::Double);
    let plan = FusionPlan::new(vec![(0..8).map(|i| KernelId(i as u32)).collect()]);
    assert!(
        ctx128.validate(&plan).is_ok(),
        "128 KiB device accepts the group"
    );
}

#[test]
fn readonly_cache_relaxes_smem_capacity() {
    // Same SMEM-heavy group as above; with the §II-C read-only-cache
    // relaxation enabled, clean pivots are demoted and the group fits.
    let mut pb = ProgramBuilder::new("smem_heavy", [512, 256, 4]);
    pb.launch(32, 32);
    let inputs: Vec<ArrayId> = (0..8).map(|i| pb.array(format!("I{i}"))).collect();
    for i in 0..8 {
        let out = pb.array(format!("O{i}"));
        let mut e = Expr::lit(0.0);
        for &inp in &inputs {
            e = e + Expr::at(inp) + Expr::load(inp, Offset::new(-1, 0, 0));
        }
        pb.kernel(format!("k{i}")).write(out, e).build();
    }
    let p = pb.build();
    let mut gpu = GpuSpec::k20x();
    gpu.use_readonly_cache = true;
    let (relaxed, ctx) = pipeline::prepare(&p, &gpu, FpPrecision::Double);
    let plan = FusionPlan::new(vec![(0..8).map(|i| KernelId(i as u32)).collect()]);
    let specs = ctx.validate(&plan).expect("RO cache must relax capacity");
    let spec = &specs[0];
    assert!(spec.ro_bytes > 0, "some pivots routed through the RO cache");
    assert!(spec.smem_bytes <= u64::from(gpu.smem_per_smx));
    assert!(spec.pivots.iter().any(|pv| pv.ro_cache));

    // The fused kernel still computes the right numbers.
    let fused =
        kfuse_core::fuse::apply_plan(&relaxed, &ctx.info, &ctx.exec, &plan, &specs).unwrap();
    assert!(fused.kernels[0]
        .staging
        .iter()
        .any(|s| s.medium == kfuse_ir::StagingMedium::ReadOnlyCache));
    let small = {
        let mut q = relaxed.clone();
        q.grid = kfuse_ir::GridDims::new(64, 64, 2);
        q
    };
    let small_fused = {
        let mut q = fused.clone();
        q.grid = kfuse_ir::GridDims::new(64, 64, 2);
        q
    };
    let mut reference = DeviceState::default_init(&small);
    run_reference(&small, &mut reference);
    let mut fused_state = DeviceState::default_init(&small_fused);
    run_block_mode(&small_fused, &mut fused_state);
    for a in 0..small.arrays.len() {
        let a = ArrayId(a as u32);
        assert_eq!(reference.max_abs_diff(&fused_state, a), 0.0);
    }
}

#[test]
fn profitability_constraint_rejects_bad_groups() {
    let (_, ctx) = ctx();
    let model = ProposedModel::default();
    // A profitable group: k3+k4 share X.
    let spec = ctx
        .check_group(&[KernelId(3), KernelId(4)], 0)
        .expect("structurally fine");
    assert!(ctx.check_profitable(&spec, &model, 0).is_ok());
}

#[test]
fn objective_of_identity_equals_measured_sum() {
    let (_, ctx) = ctx();
    let model = ProposedModel::default();
    let t = ctx.objective(&FusionPlan::identity(5), &model);
    let sum: f64 = ctx.info.kernels.iter().map(|k| k.runtime_s).sum();
    assert!((t - sum).abs() / sum < 1e-12);
}

#[test]
fn scale_les_epochs_follow_sync_cadence() {
    let p = scale_les::full_on_grid([96, 32, 2]);
    assert!(!p.host_syncs.is_empty(), "SCALE-LES model has sync points");
    let epochs = p.epochs();
    assert_eq!(epochs.len(), 142);
    assert!(*epochs.last().unwrap() > 0);
    // Epochs are monotone non-decreasing in invocation order.
    for w in epochs.windows(2) {
        assert!(w[0] <= w[1]);
    }
}

#[test]
fn stream_split_blocks_cross_stream_fusion() {
    let mut pb = ProgramBuilder::new("streams", [96, 32, 4]);
    let a = pb.array("A");
    let [b, c] = pb.arrays(["B", "C"]);
    pb.kernel("s0")
        .write(b, Expr::at(a) + Expr::lit(1.0))
        .build();
    pb.stream(1);
    pb.kernel("s1")
        .write(c, Expr::at(a) * Expr::lit(2.0))
        .build();
    let p = pb.build();
    assert_eq!(p.streams, vec![0, 1]);

    let (_, ctx) = pipeline::prepare(&p, &GpuSpec::k20x(), FpPrecision::Double);
    let plan = FusionPlan::new(vec![vec![KernelId(0), KernelId(1)]]);
    match ctx.validate(&plan) {
        Err(PlanError::StreamSplit { .. }) => {}
        other => panic!("expected stream-split rejection, got {other:?}"),
    }
    // Same-stream fusion of the same pair is fine.
    let mut p2 = p.clone();
    p2.streams = vec![0, 0];
    let (_, ctx2) = pipeline::prepare(&p2, &GpuSpec::k20x(), FpPrecision::Double);
    assert!(ctx2
        .validate(&FusionPlan::new(vec![vec![KernelId(0), KernelId(1)]]))
        .is_ok());
}

// ---------------------------------------------------------------------------
// Pinned plans: one known-feasible and one known-infeasible plan per
// workload, each cross-checked against the independent verifier with the
// exact KF code it must report.
// ---------------------------------------------------------------------------

#[test]
fn pinned_structured_feasible_plan_stays_feasible() {
    let (_, ctx) = ctx();
    let model = ProposedModel::default();
    // k3+k4 share X in the same epoch: profitable fusion (pinned).
    let plan = FusionPlan::new(vec![
        vec![KernelId(0)],
        vec![KernelId(1)],
        vec![KernelId(2)],
        vec![KernelId(3), KernelId(4)],
    ]);
    assert!(ctx.validate(&plan).is_ok());
    let report = kfuse_verify::check_plan(&ctx.info, &plan, Some(&model));
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn pinned_structured_infeasible_plan_stays_infeasible() {
    let (_, ctx) = ctx();
    let model = ProposedModel::default();
    // k0+k2 sandwich k1 on the condensed DAG: path-closure violation.
    let plan = FusionPlan::new(vec![
        vec![KernelId(0), KernelId(2)],
        vec![KernelId(1)],
        vec![KernelId(3)],
        vec![KernelId(4)],
    ]);
    assert!(matches!(
        ctx.validate(&plan),
        Err(PlanError::PathClosure { .. })
    ));
    let report = kfuse_verify::check_plan(&ctx.info, &plan, Some(&model));
    assert!(report.has_code(kfuse_verify::diag::KF_PATH_CLOSURE));
}

#[test]
fn pinned_rk3_feasible_plan_stays_feasible() {
    let p = scale_les::rk_core([1280, 32, 32]);
    let (_, ctx) = pipeline::prepare(&p, &GpuSpec::k20x(), FpPrecision::Double);
    let model = ProposedModel::default();
    // HGGA output (seed 3) on the K20X, pinned 2026-08: six groups.
    let groups: Vec<Vec<KernelId>> = vec![
        vec![0, 1, 7, 11],
        vec![2, 3, 6, 8, 10, 17],
        vec![4, 5, 12],
        vec![9, 13],
        vec![14, 15],
        vec![16],
    ]
    .into_iter()
    .map(|g| g.into_iter().map(KernelId).collect())
    .collect();
    let plan = FusionPlan::new(groups);
    assert!(ctx.validate(&plan).is_ok());
    let report = kfuse_verify::check_plan(&ctx.info, &plan, Some(&model));
    assert!(report.is_clean(), "{}", report.render_human());
    assert!(kfuse_search::Evaluator::new(&ctx, &model)
        .plan(&plan)
        .is_finite());
}

#[test]
fn pinned_rk3_infeasible_plan_stays_infeasible() {
    let p = scale_les::rk_core([1280, 32, 32]);
    let (_, ctx) = pipeline::prepare(&p, &GpuSpec::k20x(), FpPrecision::Double);
    let model = ProposedModel::default();
    // K2+K4 is structurally legal but projects *slower* than unfused:
    // the profitability constraint (1.1) must reject it. Pinned.
    let mut groups = vec![vec![KernelId(2), KernelId(4)]];
    groups.extend(
        (0..18)
            .filter(|&k| k != 2 && k != 4)
            .map(|k| vec![KernelId(k)]),
    );
    let plan = FusionPlan::new(groups);
    assert!(ctx.validate(&plan).is_ok(), "structure itself is fine");
    let report = kfuse_verify::check_plan(&ctx.info, &plan, Some(&model));
    assert!(report.has_code(kfuse_verify::diag::KF_UNPROFITABLE));
    assert!(kfuse_search::Evaluator::new(&ctx, &model)
        .plan(&plan)
        .is_infinite());
}
