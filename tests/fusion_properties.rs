//! Property-based tests on the core invariants of the fusion system.

use kernel_fusion::prelude::*;
use kfuse_core::fuse::{apply_plan, condensation_order};
use kfuse_core::relax::relax_expandable;
use kfuse_ir::analysis;
use kfuse_workloads::synth::{generate, SynthConfig};
use proptest::prelude::*;

fn small_config(seed: u64, kernels: usize, arrays: usize, dep_prob: f64) -> SynthConfig {
    SynthConfig {
        name: format!("prop_{seed}"),
        kernels,
        arrays,
        data_copies: 2,
        sharing_set: 3,
        thread_load: 4,
        kinship: 3,
        grid: [64, 16, 2],
        block: (32, 4),
        dep_prob,
        reads_per_kernel: 2,
        pointwise_prob: 0.3,
        sync_interval: None,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated program is structurally valid.
    #[test]
    fn generated_programs_validate(seed in 0u64..1000, kernels in 4usize..16) {
        let p = generate(&small_config(seed, kernels, kernels * 2, 0.5));
        prop_assert!(p.validate().is_ok());
    }

    /// The expandable-array relaxation never changes program semantics.
    #[test]
    fn relaxation_preserves_semantics(seed in 0u64..500, kernels in 4usize..14) {
        let p = generate(&small_config(seed, kernels, kernels, 0.6));
        let relaxed = relax_expandable(&p).program;
        prop_assert!(relaxed.validate().is_ok());

        let mut s_orig = DeviceState::default_init(&p);
        run_reference(&p, &mut s_orig);
        let mut s_rel = DeviceState::default_init(&relaxed);
        run_reference(&relaxed, &mut s_rel);
        // Original arrays must agree (copies carry intermediate
        // generations; the final generation stays in place).
        for a in 0..p.arrays.len() {
            let a = ArrayId(a as u32);
            prop_assert_eq!(s_orig.max_abs_diff(&s_rel, a), 0.0);
        }
    }

    /// Block-mode execution of the UNFUSED program equals reference mode
    /// (the original kernels are always coherent).
    #[test]
    fn unfused_block_mode_matches_reference(seed in 0u64..500, kernels in 4usize..12) {
        let p = generate(&small_config(seed, kernels, kernels * 2, 0.5));
        let mut s_ref = DeviceState::default_init(&p);
        run_reference(&p, &mut s_ref);
        let mut s_blk = DeviceState::default_init(&p);
        run_block_mode(&p, &mut s_blk);
        for a in 0..p.arrays.len() {
            let a = ArrayId(a as u32);
            prop_assert_eq!(s_ref.max_abs_diff(&s_blk, a), 0.0);
        }
    }

    /// Any plan the greedy solver produces is feasible, realizable, and
    /// numerically exact after fusion.
    #[test]
    fn greedy_plans_fuse_correctly(seed in 0u64..300, kernels in 4usize..12) {
        let p = generate(&small_config(seed, kernels, kernels * 2, 0.5));
        let gpu = GpuSpec::k20x();
        let model = ProposedModel::default();
        let (relaxed, ctx) = pipeline::prepare(&p, &gpu, FpPrecision::Double);
        let out = GreedySolver.solve(&ctx, &model);
        let specs = ctx.validate(&out.plan).expect("greedy plan validates");
        prop_assert!(condensation_order(&out.plan, &ctx.exec).is_ok());
        let fused = apply_plan(&relaxed, &ctx.info, &ctx.exec, &out.plan, &specs).unwrap();
        prop_assert!(fused.validate().is_ok());

        let mut s_ref = DeviceState::default_init(&relaxed);
        run_reference(&relaxed, &mut s_ref);
        let mut s_fused = DeviceState::default_init(&fused);
        run_block_mode(&fused, &mut s_fused);
        for a in 0..relaxed.arrays.len() {
            let a = ArrayId(a as u32);
            prop_assert_eq!(s_ref.max_abs_diff(&s_fused, a), 0.0);
        }
    }

    /// HGGA plans always satisfy the full constraint system, and their
    /// objective never exceeds the identity plan's.
    #[test]
    fn hgga_plans_are_feasible_and_improving(seed in 0u64..200, kernels in 4usize..12) {
        let p = generate(&small_config(seed, kernels, kernels * 2, 0.5));
        let gpu = GpuSpec::k20x();
        let model = ProposedModel::default();
        let (_, ctx) = pipeline::prepare(&p, &gpu, FpPrecision::Double);
        let solver = HggaSolver {
            config: HggaConfig {
                population: 20,
                max_generations: 40,
                stall_generations: 12,
                seed,
                ..HggaConfig::default()
            },
        };
        let out = solver.solve(&ctx, &model);
        prop_assert!(ctx.validate(&out.plan).is_ok());
        let identity: f64 = ctx.info.kernels.iter().map(|k| k.runtime_s).sum();
        prop_assert!(out.objective <= identity + 1e-12);
    }

    /// Every plan `hgga::solve` returns — for any island count — passes
    /// the independent `kfuse-verify` constraint checker with zero
    /// error diagnostics (satellite of the verifier PR).
    #[test]
    fn hgga_plans_pass_independent_verifier(
        seed in 0u64..150,
        kernels in 4usize..12,
        islands in 1usize..4,
    ) {
        let p = generate(&small_config(seed, kernels, kernels * 2, 0.5));
        let gpu = GpuSpec::k20x();
        let model = ProposedModel::default();
        let (_, ctx) = pipeline::prepare(&p, &gpu, FpPrecision::Double);
        let solver = HggaSolver {
            config: HggaConfig {
                population: 20,
                max_generations: 40,
                stall_generations: 12,
                seed,
                islands,
                ..HggaConfig::default()
            },
        };
        let out = solver.solve(&ctx, &model);
        let report = kfuse_verify::check_plan(&ctx.info, &out.plan, Some(&model));
        prop_assert!(
            report.is_clean(),
            "HGGA ({} islands) returned a plan the verifier rejects:\n{}",
            islands,
            report.render_human()
        );
    }

    /// Traffic accounting conserves stores: fusion never eliminates a
    /// write to device memory.
    #[test]
    fn fusion_conserves_stores(seed in 0u64..300, kernels in 4usize..12) {
        let p = generate(&small_config(seed, kernels, kernels * 2, 0.5));
        let gpu = GpuSpec::k20x();
        let model = ProposedModel::default();
        let (relaxed, ctx) = pipeline::prepare(&p, &gpu, FpPrecision::Double);
        let out = GreedySolver.solve(&ctx, &model);
        let specs = ctx.validate(&out.plan).unwrap();
        let fused = apply_plan(&relaxed, &ctx.info, &ctx.exec, &out.plan, &specs).unwrap();

        let stores = |prog: &Program| -> u64 {
            prog.kernels
                .iter()
                .map(|k| analysis::kernel_traffic(prog, k).store_elems)
                .sum()
        };
        prop_assert_eq!(stores(&relaxed), stores(&fused));
    }

    /// The measured (simulated) runtime of the fused program never falls
    /// below the bandwidth-ideal bound on its own traffic.
    #[test]
    fn simulated_time_respects_bandwidth_bound(seed in 0u64..300, kernels in 4usize..12) {
        let p = generate(&small_config(seed, kernels, kernels * 2, 0.5));
        let gpu = GpuSpec::k20x();
        let timing = kfuse_sim::simulate_program(&gpu, &p, FpPrecision::Double);
        let ideal = timing.total_bytes(8) as f64 / (gpu.gmem_bw_gbps * 1e9);
        prop_assert!(timing.total_s >= ideal);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Simplification never changes program semantics.
    #[test]
    fn simplify_preserves_semantics(seed in 0u64..300, kernels in 3usize..10) {
        let p = generate(&small_config(seed, kernels, kernels * 2, 0.5));
        let mut simplified = p.clone();
        kfuse_ir::simplify::simplify_program(&mut simplified);
        prop_assert!(simplified.validate().is_ok());

        let mut s_orig = DeviceState::default_init(&p);
        run_reference(&p, &mut s_orig);
        let mut s_simpl = DeviceState::default_init(&simplified);
        run_reference(&simplified, &mut s_simpl);
        for a in 0..p.arrays.len() {
            let a = ArrayId(a as u32);
            prop_assert_eq!(s_orig.max_abs_diff(&s_simpl, a), 0.0);
        }
    }

    /// A plan the evaluator scores finite always passes full validation
    /// and condensation ordering (evaluator/validator consistency).
    #[test]
    fn finite_evaluation_implies_valid_plan(seed in 0u64..200, kernels in 4usize..10) {
        use kfuse_search::Evaluator;
        let p = generate(&small_config(seed, kernels, kernels * 2, 0.5));
        let gpu = GpuSpec::k20x();
        let model = ProposedModel::default();
        let (_, ctx) = pipeline::prepare(&p, &gpu, FpPrecision::Double);
        let ev = Evaluator::new(&ctx, &model);
        // Random-ish plans from the greedy solver plus the identity.
        let plans = vec![
            FusionPlan::identity(ctx.n_kernels()),
            GreedySolver.solve(&ctx, &model).plan,
        ];
        for plan in plans {
            if ev.plan(&plan).is_finite() {
                prop_assert!(ctx.validate(&plan).is_ok());
                prop_assert!(condensation_order(&plan, &ctx.exec).is_ok());
            }
        }
    }
}
