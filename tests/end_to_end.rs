//! End-to-end integration tests: Algorithm 1 on the paper's workloads,
//! checking plan validity, semantics preservation and determinism.

use kernel_fusion::prelude::*;
use kfuse_core::fuse::apply_plan;
use kfuse_workloads::{homme, motivating, scale_les, SuiteParams, TestSuite};

fn quick_solver(seed: u64) -> HggaSolver {
    HggaSolver {
        config: HggaConfig {
            population: 40,
            max_generations: 120,
            stall_generations: 25,
            seed,
            ..HggaConfig::default()
        },
    }
}

/// Verify a program's winning plan preserves semantics exactly.
fn assert_fusion_preserves(program: &Program, seed: u64) -> f64 {
    let gpu = GpuSpec::k20x();
    let model = ProposedModel::default();
    let result = pipeline::run(
        program,
        &gpu,
        FpPrecision::Double,
        &model,
        &quick_solver(seed),
    )
    .expect("pipeline succeeds");

    let mut reference = DeviceState::default_init(&result.relaxed);
    run_reference(&result.relaxed, &mut reference);
    let mut fused = DeviceState::default_init(&result.fused);
    run_block_mode(&result.fused, &mut fused);
    for a in 0..result.relaxed.arrays.len() {
        let a = ArrayId(a as u32);
        assert_eq!(
            reference.max_abs_diff(&fused, a),
            0.0,
            "array {a} diverged in {}",
            program.name
        );
    }
    result.speedup()
}

#[test]
fn motivating_example_end_to_end() {
    let (program, _) = motivating::program([64, 16, 4]);
    let speedup = assert_fusion_preserves(&program, 3);
    assert!(speedup >= 1.0, "speedup {speedup}");
}

#[test]
fn rk3_core_end_to_end() {
    let program = scale_les::rk_core([96, 32, 4]);
    let speedup = assert_fusion_preserves(&program, 3);
    assert!(
        speedup > 1.0,
        "RK3 core must benefit from fusion ({speedup})"
    );
}

#[test]
fn suite_benchmark_end_to_end() {
    let params = SuiteParams {
        kernels: 20,
        arrays: 40,
        ..SuiteParams::default()
    };
    let program = TestSuite::generate_on_grid(&params, [96, 32, 4], (32, 4));
    let speedup = assert_fusion_preserves(&program, 5);
    assert!(speedup > 1.0, "suite benchmark speedup {speedup}");
}

#[test]
fn homme_small_grid_end_to_end() {
    let program = homme::full_on_grid([52, 26, 4]);
    assert_fusion_preserves(&program, 7);
}

#[test]
fn scale_les_small_grid_end_to_end() {
    let program = scale_les::full_on_grid([96, 32, 2]);
    assert_fusion_preserves(&program, 9);
}

#[test]
fn pipeline_is_deterministic() {
    let program = scale_les::rk_core([96, 32, 4]);
    let gpu = GpuSpec::k20x();
    let model = ProposedModel::default();
    let r1 = pipeline::run(
        &program,
        &gpu,
        FpPrecision::Double,
        &model,
        &quick_solver(11),
    )
    .unwrap();
    let r2 = pipeline::run(
        &program,
        &gpu,
        FpPrecision::Double,
        &model,
        &quick_solver(11),
    )
    .unwrap();
    assert_eq!(r1.plan, r2.plan);
    assert_eq!(r1.fused, r2.fused);
    assert_eq!(r1.speedup(), r2.speedup());
}

#[test]
fn all_solvers_produce_valid_plans() {
    let params = SuiteParams {
        kernels: 10,
        arrays: 20,
        ..SuiteParams::default()
    };
    let program = TestSuite::generate(&params);
    let gpu = GpuSpec::k20x();
    let model = ProposedModel::default();
    let (relaxed, ctx) = pipeline::prepare(&program, &gpu, FpPrecision::Double);

    let solvers: Vec<Box<dyn Solver>> = vec![
        Box::new(ExhaustiveSolver::default()),
        Box::new(quick_solver(1)),
        Box::new(GreedySolver),
    ];
    for solver in &solvers {
        let out = solver.solve(&ctx, &model);
        let specs = ctx
            .validate(&out.plan)
            .unwrap_or_else(|e| panic!("{} returned invalid plan: {e}", solver.name()));
        apply_plan(&relaxed, &ctx.info, &ctx.exec, &out.plan, &specs)
            .unwrap_or_else(|e| panic!("{} plan unrealizable: {e}", solver.name()));
        assert!(out.objective.is_finite(), "{}", solver.name());
    }
}

#[test]
fn exhaustive_is_lower_bound_on_suite_instance() {
    let params = SuiteParams {
        kernels: 10,
        arrays: 20,
        ..SuiteParams::default()
    };
    let program = TestSuite::generate(&params);
    let gpu = GpuSpec::k20x();
    let model = ProposedModel::default();
    let (_, ctx) = pipeline::prepare(&program, &gpu, FpPrecision::Double);
    let exact = ExhaustiveSolver::default().solve(&ctx, &model);
    let hgga = quick_solver(2).solve(&ctx, &model);
    let greedy = GreedySolver.solve(&ctx, &model);
    assert!(exact.objective <= hgga.objective + 1e-15);
    assert!(exact.objective <= greedy.objective + 1e-15);
}

#[test]
fn fusion_works_on_maxwell_in_single_precision() {
    let gpu = GpuSpec::gtx750ti();
    let model = ProposedModel::default();
    let params = SuiteParams {
        kernels: 16,
        arrays: 32,
        ..SuiteParams::default()
    };
    let program = TestSuite::generate_on_grid(&params, [96, 32, 4], (32, 4));
    let result = pipeline::run(
        &program,
        &gpu,
        FpPrecision::Single,
        &model,
        &quick_solver(13),
    )
    .unwrap();
    assert!(result.speedup() > 1.0);
}

#[test]
fn cloverleaf_timestep_end_to_end() {
    let program = kfuse_workloads::cloverleaf::timestep([96, 32, 2]);
    let speedup = assert_fusion_preserves(&program, 3);
    assert!(speedup > 1.0, "CloverLeaf timestep speedup {speedup}");
}

#[test]
fn repeated_rk3_schedule_fuses_across_iterations() {
    use kfuse_core::repeat::{expand_schedule, repeat_whole_program};
    let template = kfuse_workloads::scale_les::rk_core([96, 32, 2]);
    let sched = repeat_whole_program(&template, 2, false);
    let program = expand_schedule(&template, &sched);
    assert_eq!(program.kernels.len(), 36);
    let speedup = assert_fusion_preserves(&program, 5);
    assert!(speedup > 1.0);
}
