//! Integration tests for the `kfuse` CLI binary.

use std::process::Command;

fn kfuse(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_kfuse"))
        .args(args)
        .output()
        .expect("kfuse binary runs")
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("kfuse-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn usage_on_no_args() {
    let out = kfuse(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn example_emits_valid_program_json() {
    let out = kfuse(&["example", "rk3"]);
    assert!(out.status.success());
    let p: kfuse_ir::Program = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(p.kernels.len(), 18);
    assert!(p.validate().is_ok());
}

#[test]
fn analyze_reports_structure() {
    let path = tmp("rk3_analyze.json");
    let dump = kfuse(&["example", "rk3"]);
    std::fs::write(&path, &dump.stdout).unwrap();

    let out = kfuse(&["analyze", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("18 kernels"));
    assert!(text.contains("expandable"));
    assert!(text.contains("reducible GMEM traffic"));
}

#[test]
fn fuse_emits_cuda_and_plan() {
    let path = tmp("quickstart.json");
    let dump = kfuse(&["example", "quickstart"]);
    std::fs::write(&path, &dump.stdout).unwrap();

    let cu = tmp("quickstart.cu");
    let plan = tmp("quickstart_plan.json");
    let out = kfuse(&[
        "fuse",
        path.to_str().unwrap(),
        "--seed",
        "3",
        "--emit-cuda",
        cu.to_str().unwrap(),
        "--plan-out",
        plan.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("speedup"));

    let cuda = std::fs::read_to_string(&cu).unwrap();
    assert!(cuda.contains("__global__ void"));
    let plan_json = std::fs::read_to_string(&plan).unwrap();
    let p: kfuse_core::plan::FusionPlan = serde_json::from_str(&plan_json).unwrap();
    assert!(p.new_kernel_count() >= 1);
}

#[test]
fn simulate_prints_per_kernel_table() {
    let path = tmp("rk3_sim.json");
    let dump = kfuse(&["example", "rk3"]);
    std::fs::write(&path, &dump.stdout).unwrap();

    let out = kfuse(&["simulate", path.to_str().unwrap(), "--gpu", "k40"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("K1_velx"));
    assert!(text.contains("total:"));
    assert!(text.contains("K40"));
}

#[test]
fn codegen_streams_cuda_to_stdout() {
    let path = tmp("rk3_cg.json");
    let dump = kfuse(&["example", "rk3"]);
    std::fs::write(&path, &dump.stdout).unwrap();

    let out = kfuse(&["codegen", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("#define NX 1280"));
    assert!(text.contains("__global__ void K1_velx"));
    assert!(text.contains("// Host launch sequence:"));
}

#[test]
fn invalid_json_reports_error() {
    let path = tmp("garbage.json");
    std::fs::write(&path, "{not json").unwrap();
    let out = kfuse(&["analyze", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot parse"));
}

#[test]
fn verify_accepts_identity_and_rejects_bad_cover() {
    let path = tmp("quick_verify.json");
    let dump = kfuse(&["example", "quickstart"]);
    std::fs::write(&path, &dump.stdout).unwrap();

    let out = kfuse(&["verify", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("0 error(s)"));

    // A plan that covers kernel 0 twice must fail with the KF0004 code.
    let plan = tmp("bad_cover.json");
    std::fs::write(&plan, r#"{"groups":[[0],[0,1]]}"#).unwrap();
    let out = kfuse(&[
        "verify",
        path.to_str().unwrap(),
        "--plan",
        plan.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("KF0004"));
}

#[test]
fn verify_json_output_is_machine_readable() {
    let path = tmp("quick_verify_json.json");
    let dump = kfuse(&["example", "quickstart"]);
    std::fs::write(&path, &dump.stdout).unwrap();
    let plan = tmp("missing_kernel.json");
    std::fs::write(&plan, r#"{"groups":[[0]]}"#).unwrap();

    let out = kfuse(&[
        "verify",
        path.to_str().unwrap(),
        "--plan",
        plan.to_str().unwrap(),
        "--json",
    ]);
    assert!(!out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON report");
    let arr = v.as_array().expect("array of diagnostics");
    assert!(arr.iter().any(|d| d["code"].as_str() == Some("KF0002")));
}

#[test]
fn lint_fused_rk3_is_clean() {
    let path = tmp("rk3_lint.json");
    let dump = kfuse(&["example", "rk3"]);
    std::fs::write(&path, &dump.stdout).unwrap();

    let out = kfuse(&["lint", path.to_str().unwrap(), "--fuse", "--seed", "3"]);
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn solve_with_cache_dir_hits_on_repeat() {
    let dir = tmp(&format!("plan-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Extract one counter row from the `stats`-style table.
    fn counter(out: &std::process::Output, name: &str) -> u64 {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.replace(',', "").parse().ok())
            .unwrap_or_else(|| panic!("counter {name} missing from stats table"))
    }

    let cold = kfuse(&["solve", "synth12", "--cache-dir", dir.to_str().unwrap()]);
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    assert_eq!(counter(&cold, "cache_probes"), 1);
    assert_eq!(counter(&cold, "cache_misses"), 1);
    assert!(
        dir.join("plans.jsonl").exists(),
        "cold solve populates cache"
    );

    let warm = kfuse(&["solve", "synth12", "--cache-dir", dir.to_str().unwrap()]);
    assert!(warm.status.success());
    assert_eq!(counter(&warm, "cache_hits"), 1);
    assert_eq!(
        counter(&warm, "generations"),
        0,
        "served plans run no search"
    );
}

#[test]
fn solve_budget_flag_is_ga_only() {
    let out = kfuse(&["solve", "synth12", "--budget-ms", "2000"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("hgga-warm"));

    let bad = kfuse(&[
        "solve",
        "synth12",
        "--solver",
        "greedy",
        "--budget-ms",
        "100",
    ]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("require a GA solver"));

    let bad_ms = kfuse(&["solve", "synth12", "--budget-ms", "soon"]);
    assert!(!bad_ms.status.success());
    assert!(String::from_utf8_lossy(&bad_ms.stderr).contains("whole milliseconds"));
}

#[test]
fn lint_flags_broken_cuda_file() {
    let src = tmp("rk3_broken.cu");
    let path = tmp("rk3_lint_src.json");
    let dump = kfuse(&["example", "rk3"]);
    std::fs::write(&path, &dump.stdout).unwrap();
    let cg = kfuse(&["codegen", path.to_str().unwrap()]);
    assert!(cg.status.success());
    // Strip the bank-conflict padding from every shared tile declaration.
    let cuda = String::from_utf8_lossy(&cg.stdout).replace(" + 1];", "];");
    std::fs::write(&src, cuda).unwrap();

    let out = kfuse(&["lint", src.to_str().unwrap()]);
    // Padding lints are warnings, so the exit stays zero but the report
    // must name KF0201.
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("KF0201"));
}

/// Run `kfuse serve --stdin` with a request stream on stdin, returning
/// the JSONL response stream.
fn kfuse_serve_stdin(extra: &[&str], input: &str) -> Vec<u8> {
    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_kfuse"))
        .arg("serve")
        .arg("--stdin")
        .args(extra)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("kfuse binary runs");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    out.stdout
}

#[test]
fn serve_stdin_session_is_deterministic_and_caches() {
    let dir = tmp("serve-stdin-cache");
    let _ = std::fs::remove_dir_all(&dir);
    let requests = "{\"id\":\"p\",\"op\":\"ping\"}\n\
                    {\"id\":\"a\",\"op\":\"solve\",\"example\":\"synth20\"}\n\
                    {\"id\":\"b\",\"op\":\"solve\",\"example\":\"synth20\"}\n\
                    {\"id\":\"bye\",\"op\":\"shutdown\"}\n";

    // Deterministic mode: two fresh runs (no cache), identical bytes.
    let one = kfuse_serve_stdin(&["--workers", "1"], requests);
    let two = kfuse_serve_stdin(&["--workers", "1"], requests);
    assert_eq!(one, two, "--workers 1 must be bit-for-bit reproducible");

    // With a cache directory the repeat within one session is an exact
    // hit served with zero search.
    let out = kfuse_serve_stdin(
        &["--workers", "1", "--cache-dir", dir.to_str().unwrap()],
        requests,
    );
    let text = String::from_utf8_lossy(&out);
    assert!(text.contains("\"outcome\":\"cold\""), "{text}");
    assert!(text.contains("\"outcome\":\"exact_hit\""), "{text}");
    assert!(text.contains("\"generations\":0"), "{text}");
    assert!(text.contains("\"draining\":true"), "{text}");
    // ...and the cache persists: a second daemon starts warm.
    let out = kfuse_serve_stdin(
        &["--workers", "1", "--cache-dir", dir.to_str().unwrap()],
        "{\"id\":\"c\",\"op\":\"solve\",\"example\":\"synth20\"}\n",
    );
    let text = String::from_utf8_lossy(&out);
    assert!(text.contains("\"outcome\":\"exact_hit\""), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}
