//! Differential testing: the independent `kfuse-verify` constraint checker
//! against BOTH plan evaluators (the sharded production one and the legacy
//! reference implementation). For every generated plan the three must agree
//! on feasibility: `verifier clean <=> Evaluator finite <=> legacy finite`.
//!
//! 16 proptest cases x 32 plans each = 512 plans per run (>= the 500-plan
//! floor), spanning identity plans, greedy solutions, and random
//! label-assignment partitions that freely violate path closure, kinship,
//! capacity, and profitability.

use kernel_fusion::prelude::*;
use kfuse_search::eval::legacy::LegacyEvaluator;
use kfuse_search::Evaluator;
use kfuse_verify::check_plan;
use kfuse_workloads::synth::{generate, SynthConfig};
use proptest::prelude::*;

fn small_config(seed: u64, kernels: usize) -> SynthConfig {
    SynthConfig {
        name: format!("diff_{seed}"),
        kernels,
        arrays: kernels * 2,
        data_copies: 2,
        sharing_set: 3,
        thread_load: 4,
        kinship: 3,
        grid: [64, 16, 2],
        block: (32, 4),
        dep_prob: 0.5,
        reads_per_kernel: 2,
        pointwise_prob: 0.3,
        sync_interval: None,
        seed,
    }
}

/// Deterministic in-test RNG (the vendored proptest has no sample-from-seed
/// combinators for composite values).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random partition of `n` kernels: assign each kernel a label from a
/// pool of `n/2 + 1`, group kernels sharing a label. Always a valid exact
/// cover; everything else (closure, kinship, capacity, profitability) is
/// left to chance so infeasible plans are common.
fn random_partition(n: usize, state: &mut u64) -> FusionPlan {
    let pool = n / 2 + 1;
    let mut buckets: Vec<Vec<KernelId>> = vec![Vec::new(); pool];
    for k in 0..n {
        let label = (splitmix64(state) % pool as u64) as usize;
        buckets[label].push(KernelId(k as u32));
    }
    buckets.retain(|b| !b.is_empty());
    FusionPlan::new(buckets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Three-way feasibility agreement on 32 plans per generated program.
    #[test]
    fn verifier_and_both_evaluators_agree(seed in 0u64..10_000, kernels in 4usize..14) {
        let p = generate(&small_config(seed, kernels));
        let gpu = GpuSpec::k20x();
        let model = ProposedModel::default();
        let (_, ctx) = pipeline::prepare(&p, &gpu, FpPrecision::Double);
        let ev = Evaluator::new(&ctx, &model);
        let legacy = LegacyEvaluator::new(&ctx, &model);

        let mut plans = vec![
            FusionPlan::identity(ctx.n_kernels()),
            GreedySolver.solve(&ctx, &model).plan,
        ];
        let mut state = seed ^ 0xD1FF_EE00;
        for _ in 0..30 {
            plans.push(random_partition(ctx.n_kernels(), &mut state));
        }

        let mut infeasible = 0usize;
        for plan in &plans {
            let report = check_plan(&ctx.info, plan, Some(&model));
            let sharded = ev.plan(plan).is_finite();
            let reference = legacy.plan(plan).is_finite();
            prop_assert!(
                sharded == reference,
                "sharded/legacy evaluators disagree on {:?}",
                plan
            );
            prop_assert!(
                report.is_clean() == sharded,
                "verifier disagrees with the evaluators on {:?}:\n{}",
                plan,
                report.render_human()
            );
            if !sharded {
                infeasible += 1;
            }
        }
        // The random partitions must actually exercise the infeasible side
        // for the agreement to mean anything.
        prop_assert!(infeasible < plans.len(), "every plan infeasible");
    }
}
