//! # kernel-fusion
//!
//! A Rust reproduction of **Wahib & Maruyama, "Scalable Kernel Fusion for
//! Memory-Bound GPU Applications" (SC 2014)**: a planner that decides which
//! kernels of a large stencil application to fuse, using a Hybrid Grouping
//! Genetic Algorithm guided by a codeless performance upper-bound
//! projection model — plus the full substrate needed to evaluate it without
//! GPU hardware (a stencil-kernel IR, a functional interpreter with an
//! explicit SMEM coherence model, and an SMX-level timing simulator).
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`gpu`] | device specs (Table IV), occupancy |
//! | [`ir`] | stencil-kernel IR, traffic/FLOP analysis |
//! | [`sim`] | functional interpreter + timing simulator |
//! | [`core`] | graphs, constraints, fusion transform, projection models |
//! | [`search`] | HGGA, hierarchical partition-first, exhaustive and greedy solvers |
//! | [`verify`] | independent plan verifier, hazard analyzer, CUDA lint |
//! | [`workloads`] | Fig. 3 example, CloverLeaf suite, SCALE-LES, HOMME |
//! | [`obs`] | structured tracing, metrics registry, chrome-trace export |
//!
//! ## Quickstart
//!
//! ```
//! use kernel_fusion::prelude::*;
//!
//! // A toy program: two kernels sharing a heavy input array.
//! let mut pb = ProgramBuilder::new("demo", [256, 128, 8]);
//! let a = pb.array("A");
//! let b = pb.array("B");
//! let c = pb.array("C");
//! pb.kernel("k0").write(b, Expr::at(a) + Expr::lit(1.0)).build();
//! pb.kernel("k1").write(c, Expr::at(a) * Expr::lit(2.0)).build();
//! let program = pb.build();
//!
//! // Algorithm 1: metadata → graphs → HGGA search → fusion.
//! let gpu = GpuSpec::k20x();
//! let model = ProposedModel::default();
//! let solver = HggaSolver::with_seed(42);
//! let result = pipeline::run(&program, &gpu, FpPrecision::Double, &model, &solver).unwrap();
//! assert!(result.speedup() > 1.0);
//! ```

pub use kfuse_core as core;
pub use kfuse_gpu as gpu;
pub use kfuse_ir as ir;
pub use kfuse_obs as obs;
pub use kfuse_search as search;
pub use kfuse_sim as sim;
pub use kfuse_verify as verify;
pub use kfuse_workloads as workloads;

pub use kfuse_core::pipeline;

/// Common imports for applications using the library.
pub mod prelude {
    pub use kfuse_core::model::{PerfModel, ProposedModel, RooflineModel, SimpleModel};
    pub use kfuse_core::pipeline::{self, Solver};
    pub use kfuse_core::plan::{FusionPlan, PlanContext};
    pub use kfuse_gpu::{FpPrecision, GpuSpec};
    pub use kfuse_ir::builder::ProgramBuilder;
    pub use kfuse_ir::{ArrayId, Expr, KernelId, Program};
    pub use kfuse_search::{
        ExhaustiveSolver, GreedySolver, HggaConfig, HggaHierSolver, HggaSolver, PartitionMode,
        WarmSolver,
    };
    pub use kfuse_sim::{run_block_mode, run_reference, simulate_program, DeviceState};
}
