//! `kfuse` — command-line driver for the kernel-fusion pipeline.
//!
//! Programs are exchanged as JSON-serialized `kfuse_ir::Program` values;
//! `kfuse example <name>` dumps the built-in workloads to get started.
//!
//! ```text
//! kfuse example rk3 > rk3.json        # dump a built-in program
//! kfuse analyze rk3.json              # graphs, classes, KF03 module analysis
//! kfuse analyze rk3.json --fuse --json  # analyze the fused module, JSON out
//! kfuse fuse rk3.json --gpu k20x      # search + fuse + simulate
//! kfuse fuse rk3.json --emit-cuda out.cu
//! kfuse solve synth60 --trace t.json  # search only, with a chrome trace
//! kfuse stats rk3.json                # solve and print the metrics table
//! kfuse simulate rk3.json             # per-kernel timing table
//! kfuse codegen rk3.json > rk3.cu     # CUDA C for the program as-is
//! kfuse verify rk3.json --plan p.json # independent plan + hazard check
//! kfuse lint rk3.json --fuse          # lint the generated CUDA text
//! ```
//!
//! `solve` and `stats` accept either a program JSON path or a built-in
//! example name (`kfuse solve synth60` traces the 60-kernel scaling
//! workload without an intermediate file).

use kernel_fusion::prelude::*;
use kfuse_core::depgraph::{DependencyGraph, TouchClass};
use kfuse_core::efficiency::reducible_traffic;
use kfuse_core::fuse::apply_plan;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         kfuse example <quickstart|rk3|fig3|scale-les|homme|suite|synthN>  (N<=200 scaling, N>200 clustered)\n  \
         kfuse analyze  <program.json> [--gpu k20x|k40|gtx750ti] [--fuse] [--seed N] [--json]\n             \
                        [--dot-deps FILE] [--dot-exec FILE]\n  \
         kfuse simulate <program.json> [--gpu ...]\n  \
         kfuse fuse     <program.json> [--gpu ...] [--seed N] [--islands N] [--emit-cuda FILE] [--plan-out FILE]\n  \
         kfuse solve    <program.json|example> [--gpu ...] [--solver hgga|hgga-hier|greedy|exhaustive]\n             \
                        [--seed N] [--islands N] [--partition auto|off|MAX_REGION]\n             \
                        [--cache-dir DIR] [--budget-ms N]\n             \
                        [--trace FILE] [--metrics FILE] [--plan-out FILE]\n  \
         kfuse stats    <program.json|example> [--gpu ...] [--solver ...] [--seed N] [--islands N]\n             \
                        [--partition auto|off|MAX_REGION] [--cache-dir DIR] [--budget-ms N]\n  \
         kfuse codegen  <program.json> [--single]\n  \
         kfuse verify   <program.json> [--gpu ...] [--plan FILE] [--json]\n  \
         kfuse lint     <program.json|kernels.cu> [--gpu ...] [--fuse] [--seed N] [--json]\n  \
         kfuse serve    (--socket PATH | --stdin) [--workers N] [--queue-depth N]\n             \
                        [--cache-dir DIR] [--gpu ...] [--seed N] [--retry-after-ms N]"
    );
    ExitCode::from(2)
}

fn parse_gpu(args: &[String]) -> GpuSpec {
    match flag_value(args, "--gpu").as_deref() {
        Some("k40") => GpuSpec::k40(),
        Some("gtx750ti") => GpuSpec::gtx750ti(),
        _ => GpuSpec::k20x(),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn load_program(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let p: Program =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    p.validate().map_err(|e| format!("invalid program: {e}"))?;
    Ok(p)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "example" => cmd_example(rest),
        "analyze" => cmd_analyze(rest),
        "simulate" => cmd_simulate(rest),
        "fuse" => cmd_fuse(rest),
        "solve" => cmd_solve(rest, true),
        "stats" => cmd_solve(rest, false),
        "codegen" => cmd_codegen(rest),
        "verify" => cmd_verify(rest),
        "lint" => cmd_lint(rest),
        "serve" => cmd_serve(rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Build a built-in example program by name. `synth<N>` (e.g. `synth60`)
/// is the N-kernel scaling-study workload from `kfuse_workloads::synth`
/// up to 200 kernels; above that it is the clustered large-program
/// workload of the hierarchical-planning study (`synth1000`, `synth5000`,
/// `synth10000`). The daemon resolves the same names per request, so the
/// list lives in `kfuse_workloads::by_name`.
fn builtin_program(name: &str) -> Option<Program> {
    kfuse_workloads::by_name(name)
}

fn cmd_example(args: &[String]) -> Result<(), String> {
    let Some(name) = args.first() else {
        return Err("example name required".into());
    };
    let p = builtin_program(name).ok_or_else(|| format!("unknown example `{name}`"))?;
    let json = serde_json::to_string_pretty(&p).map_err(|e| e.to_string())?;
    println!("{json}");
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first() else {
        return Err("program path required".into());
    };
    let p = load_program(path)?;
    let gpu = parse_gpu(args);
    let json = args.iter().any(|a| a == "--json");

    // Program whose generated GPU module gets the structured KF03xx
    // analysis: the input as-is, or the fused result of a full pipeline
    // run under `--fuse`.
    let fused;
    let analyzed: &Program = if args.iter().any(|a| a == "--fuse") {
        let seed = flag_value(args, "--seed")
            .and_then(|s| s.parse().ok())
            .unwrap_or(17u64);
        let model = ProposedModel::default();
        let solver = HggaSolver::with_seed(seed);
        let r = pipeline::run(&p, &gpu, gpu.default_precision(), &model, &solver)
            .map_err(|e| e.to_string())?;
        fused = r.fused;
        &fused
    } else {
        &p
    };

    if json {
        // Machine-readable mode: the analysis report is the whole output.
        return analyze_structured(analyzed, true);
    }

    println!("program `{}`", p.name);
    println!(
        "  grid {}x{}x{}, block {}x{} ({} blocks)",
        p.grid.nx,
        p.grid.ny,
        p.grid.nz,
        p.launch.block_x,
        p.launch.block_y,
        p.blocks()
    );
    println!(
        "  {} kernels, {} arrays, {} host syncs",
        p.kernels.len(),
        p.arrays.len(),
        p.host_syncs.len()
    );

    let dep = DependencyGraph::build(&p);
    let count = |c: TouchClass| dep.classes.iter().filter(|&&x| x == c).count();
    println!(
        "  touch classes: {} read-only / {} read-write / {} expandable / {} write-only",
        count(TouchClass::ReadOnly),
        count(TouchClass::ReadWrite),
        count(TouchClass::ExpandableReadWrite),
        count(TouchClass::WriteOnly)
    );
    println!("  sharing sets: {}", dep.sharing_set_count());

    let (_, ctx) = pipeline::prepare(&p, &gpu, gpu.default_precision());
    if let Some(out) = flag_value(args, "--dot-deps") {
        let dot = kfuse_core::dot::dependency_dot(&p, &dep);
        std::fs::write(&out, dot).map_err(|e| e.to_string())?;
        println!("  wrote dependency graph to {out}");
    }
    if let Some(out) = flag_value(args, "--dot-exec") {
        let dot = kfuse_core::dot::exec_order_dot(
            &p,
            &kfuse_core::exec_order::ExecOrderGraph::build(&p),
            None,
        );
        std::fs::write(&out, dot).map_err(|e| e.to_string())?;
        println!("  wrote order-of-execution graph to {out}");
    }
    let red = reducible_traffic(&ctx);
    println!(
        "  reducible GMEM traffic on {}: {:.1}% ({:.1} MB of {:.1} MB)",
        gpu.name,
        100.0 * red.fraction(),
        (red.original_bytes - red.max_fused_bytes) as f64 / 1e6,
        red.original_bytes as f64 / 1e6
    );
    analyze_structured(analyzed, false)
}

/// Build the GPU module for `p` and run the structured KF03xx analysis
/// passes over it, reporting through [`finish_report`] (nonzero exit on
/// any analysis error).
fn analyze_structured(p: &Program, json: bool) -> Result<(), String> {
    let opts = kfuse_codegen::CodegenOptions::default();
    let module = kfuse_codegen::build_module(p, &opts);
    let metrics = kernel_fusion::obs::MetricsRegistry::new();
    let report = kernel_fusion::verify::analyze_module_counted(
        &module,
        kernel_fusion::obs::ObsHandle::disabled(),
        &metrics,
    );
    if !json {
        println!(
            "  module analysis: {} kernel(s), {} diagnostic(s)",
            module.kernels.len(),
            report.diagnostics.len()
        );
    }
    finish_report(report, json)
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first() else {
        return Err("program path required".into());
    };
    let p = load_program(path)?;
    let gpu = parse_gpu(args);
    let t = simulate_program(&gpu, &p, gpu.default_precision());
    println!(
        "{:<40} {:>10} {:>10} {:>9} {:>7}",
        "kernel", "time (us)", "gmem (us)", "occupancy", "regs"
    );
    println!("{}", "-".repeat(82));
    for k in &t.kernels {
        println!(
            "{:<40} {:>10.2} {:>10.2} {:>8.0}% {:>7}",
            if k.name.len() > 38 {
                &k.name[..38]
            } else {
                &k.name
            },
            k.time_s * 1e6,
            k.gmem_s * 1e6,
            k.occupancy.occupancy * 100.0,
            k.regs_per_thread
        );
    }
    println!("{}", "-".repeat(82));
    println!("total: {:.2} us on {}", t.total_s * 1e6, gpu.name);
    Ok(())
}

fn cmd_fuse(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first() else {
        return Err("program path required".into());
    };
    let p = load_program(path)?;
    let gpu = parse_gpu(args);
    let seed = flag_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(17u64);
    let islands = flag_value(args, "--islands")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1usize);

    let model = ProposedModel::default();
    let mut solver = HggaSolver::with_seed(seed);
    solver.config.islands = islands;
    let r = pipeline::run(&p, &gpu, gpu.default_precision(), &model, &solver)
        .map_err(|e| e.to_string())?;

    println!(
        "fused {} of {} kernels into {} new kernels ({} calls total)",
        r.fused_kernel_count(),
        p.kernels.len(),
        r.new_kernel_count(),
        r.fused.kernels.len()
    );
    for (gi, g) in r.plan.groups.iter().enumerate() {
        if g.len() < 2 {
            continue;
        }
        let names: Vec<&str> = g
            .iter()
            .map(|&k| r.relaxed.kernel(k).name.as_str())
            .collect();
        let spec = &r.specs[gi];
        println!(
            "  {} <- {:?}{}",
            gi,
            names,
            if spec.complex { "  [complex]" } else { "" }
        );
    }
    println!(
        "simulated on {}: {:.2} ms -> {:.2} ms  (speedup {:.3}x)",
        gpu.name,
        r.original_timing.total_s * 1e3,
        r.fused_timing.total_s * 1e3,
        r.speedup()
    );
    println!(
        "search: {} generations, {} evaluations, {:?}",
        r.stats.generations, r.stats.evaluations, r.stats.elapsed
    );
    if !r.stats.islands.is_empty() {
        for (i, isl) in r.stats.islands.iter().enumerate() {
            println!(
                "  island {i}: {} generations, best at gen {}, {} migrants received",
                isl.generations, isl.best_generation, isl.migrations_received
            );
        }
    }

    if let Some(out) = flag_value(args, "--plan-out") {
        let json = serde_json::to_string_pretty(&r.plan).map_err(|e| e.to_string())?;
        std::fs::write(&out, json).map_err(|e| e.to_string())?;
        println!("wrote plan to {out}");
    }
    if let Some(out) = flag_value(args, "--emit-cuda") {
        let opts = kfuse_codegen::CodegenOptions::default();
        let code = kfuse_codegen::emit_program(&r.fused, &opts);
        std::fs::write(&out, code).map_err(|e| e.to_string())?;
        println!("wrote fused CUDA C to {out}");
    }
    // Always re-apply + verify determinism of the plan as a sanity check.
    let specs = r.ctx.validate(&r.plan).map_err(|e| e.to_string())?;
    apply_plan(&r.relaxed, &r.ctx.info, &r.ctx.exec, &r.plan, &specs).map_err(|e| e.to_string())?;
    Ok(())
}

/// `kfuse solve` / `kfuse stats`: run the search only (no fusion apply or
/// simulation), with optional chrome-trace and metrics-dump output.
/// `stats` is `solve` reduced to the human metrics table.
fn cmd_solve(args: &[String], full_output: bool) -> Result<(), String> {
    use kernel_fusion::obs::{InMemoryRecorder, ObsHandle};

    let Some(target) = args.first() else {
        return Err("program path or example name required".into());
    };
    let p = if std::path::Path::new(target).exists() {
        load_program(target)?
    } else {
        builtin_program(target)
            .ok_or_else(|| format!("`{target}` is neither a file nor a built-in example"))?
    };
    let gpu = parse_gpu(args);
    let seed = flag_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(17u64);
    let islands = flag_value(args, "--islands")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1usize);

    let partition = match flag_value(args, "--partition") {
        Some(v) => Some(v.parse::<PartitionMode>()?),
        None => None,
    };
    let cache_dir = flag_value(args, "--cache-dir").map(std::path::PathBuf::from);
    let budget = flag_value(args, "--budget-ms")
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| format!("--budget-ms expects whole milliseconds, got `{s}`"))
        })
        .transpose()?
        .map(std::time::Duration::from_millis);
    // Plan reuse and deadlines live in the warm-start wrapper around the
    // GA; the enumerative solvers have neither populations to seed nor
    // generations to cut short.
    let reuse = cache_dir.is_some() || budget.is_some();

    let hgga;
    let hier;
    let warm;
    let exhaustive;
    let solver: &dyn Solver = match flag_value(args, "--solver").as_deref() {
        Some(other @ ("greedy" | "exhaustive")) if reuse => {
            return Err(format!(
                "--cache-dir/--budget-ms require a GA solver; `{other}` does not support them"
            ));
        }
        // `--partition` implies the hierarchical solver: it is the only
        // one with a decomposition layer to configure.
        None | Some("hgga") if partition.is_none() && !reuse => {
            let mut s = HggaSolver::with_seed(seed);
            s.config.islands = islands;
            hgga = s;
            &hgga
        }
        None | Some("hgga") | Some("hgga-hier") => {
            let mut s = HggaHierSolver::with_seed(seed);
            s.config.islands = islands;
            if let Some(mode) = partition {
                s.partition = mode;
            } else if !matches!(flag_value(args, "--solver").as_deref(), Some("hgga-hier")) {
                // Plain `hgga` + cache/budget: keep the flat search
                // trajectory (the hier solver with partitioning off
                // delegates to the flat GA bit-for-bit).
                s.partition = PartitionMode::Off;
            }
            if reuse {
                warm = WarmSolver::new(s, cache_dir, budget);
                &warm
            } else {
                hier = s;
                &hier
            }
        }
        Some("greedy") => &GreedySolver,
        Some("exhaustive") => {
            let s = ExhaustiveSolver::default();
            if p.kernels.len() > s.max_kernels {
                return Err(format!(
                    "the exhaustive solver enumerates all set partitions and is capped at \
                     {} kernels (Bell-number blowup); `{target}` has {} — \
                     use --solver hgga or hgga-hier instead",
                    s.max_kernels,
                    p.kernels.len()
                ));
            }
            exhaustive = s;
            &exhaustive
        }
        Some(other) => return Err(format!("unknown solver `{other}`")),
    };

    let (_, ctx) = pipeline::prepare(&p, &gpu, gpu.default_precision());
    let model = ProposedModel::default();
    let trace_out = flag_value(args, "--trace");
    let recorder = trace_out.as_ref().map(|_| InMemoryRecorder::new());
    let obs = match &recorder {
        Some(rec) => ObsHandle::new(rec),
        None => ObsHandle::disabled(),
    };
    let out = solver.solve_observed(&ctx, &model, obs);

    if full_output {
        println!(
            "solver {}: objective {:.6e} over {} kernels in {} groups ({:?})",
            solver.name(),
            out.objective,
            ctx.n_kernels(),
            out.plan.groups.len(),
            out.stats.elapsed
        );
        println!();
    }
    print!("{}", out.metrics.render_table());
    // Derived view over the batch counters: average candidate lanes per
    // scoring sweep (up to 8 with the `batch` feature, 1 under the scalar
    // fallback, 0 when the run never batch-scored).
    println!(
        "{:<20}  {:>20.6}",
        "avg_batch_fill", out.stats.avg_batch_fill
    );
    if full_output && !out.stats.islands.is_empty() {
        println!();
        for (i, isl) in out.stats.islands.iter().enumerate() {
            println!(
                "island {i}: {} generations, best at gen {}, {} migrants received",
                isl.generations, isl.best_generation, isl.migrations_received
            );
        }
    }

    if let Some(path) = trace_out {
        let rec = recorder.as_ref().expect("recorder exists when tracing");
        let json = kernel_fusion::obs::chrome_trace(rec);
        std::fs::write(&path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote chrome trace ({} events) to {path}", rec.len());
    }
    if let Some(path) = flag_value(args, "--metrics") {
        std::fs::write(&path, out.metrics.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote metrics dump to {path}");
    }
    if let Some(path) = flag_value(args, "--plan-out") {
        let json = serde_json::to_string_pretty(&out.plan).map_err(|e| e.to_string())?;
        std::fs::write(&path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote plan to {path}");
    }

    // Consistency guard: the legacy stats view must stay derivable from
    // the registry snapshot (the regression tests pin this per solver).
    debug_assert_eq!(
        out.stats.evaluations,
        out.metrics.get(kernel_fusion::obs::Counter::MemoMisses)
    );
    Ok(())
}

/// Print a verifier report and turn errors into a nonzero exit.
///
/// Reports are sorted (code, then span) before rendering so `verify`,
/// `lint`, and `analyze` output is deterministic across runs.
fn finish_report(report: kernel_fusion::verify::Report, json: bool) -> Result<(), String> {
    let report = report.sorted();
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "{} verification error(s) found",
            report.error_count()
        ))
    }
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first() else {
        return Err("program path required".into());
    };
    let p = load_program(path)?;
    let gpu = parse_gpu(args);
    let json = args.iter().any(|a| a == "--json");
    let (relaxed, ctx) = pipeline::prepare(&p, &gpu, gpu.default_precision());

    let plan = match flag_value(args, "--plan") {
        Some(f) => {
            let text = std::fs::read_to_string(&f).map_err(|e| format!("cannot read {f}: {e}"))?;
            serde_json::from_str::<FusionPlan>(&text)
                .map_err(|e| format!("cannot parse {f}: {e}"))?
        }
        None => FusionPlan::identity(relaxed.kernels.len()),
    };

    let model = ProposedModel::default();
    let mut report = kernel_fusion::verify::check_plan(&ctx.info, &plan, Some(&model));
    // Hazard-check the relaxed IR, and — when the plan is feasible — the
    // fused program it produces.
    report.extend(kernel_fusion::verify::check_program(&relaxed));
    if report.is_clean() {
        if let Ok(specs) = ctx.validate(&plan) {
            let fused = apply_plan(&relaxed, &ctx.info, &ctx.exec, &plan, &specs)
                .map_err(|e| e.to_string())?;
            report.extend(kernel_fusion::verify::check_program(&fused));
        }
    }
    finish_report(report, json)
}

fn cmd_lint(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first() else {
        return Err("program or .cu path required".into());
    };
    let json = args.iter().any(|a| a == "--json");
    let cuda = if path.ends_with(".cu") {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    } else {
        let p = load_program(path)?;
        let opts = kfuse_codegen::CodegenOptions::default();
        if args.iter().any(|a| a == "--fuse") {
            let gpu = parse_gpu(args);
            let seed = flag_value(args, "--seed")
                .and_then(|s| s.parse().ok())
                .unwrap_or(17u64);
            let model = ProposedModel::default();
            let solver = HggaSolver::with_seed(seed);
            let r = pipeline::run(&p, &gpu, gpu.default_precision(), &model, &solver)
                .map_err(|e| e.to_string())?;
            kfuse_codegen::emit_program(&r.fused, &opts)
        } else {
            kfuse_codegen::emit_program(&p, &opts)
        }
    };
    finish_report(kernel_fusion::verify::lint(&cuda), json)
}

fn cmd_codegen(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first() else {
        return Err("program path required".into());
    };
    let p = load_program(path)?;
    let opts = kfuse_codegen::CodegenOptions {
        double_precision: !args.iter().any(|a| a == "--single"),
        restrict: true,
    };
    print!("{}", kfuse_codegen::emit_program(&p, &opts));
    Ok(())
}

/// `kfuse serve`: run the `kfused` planning daemon. JSONL requests over
/// a Unix socket (`--socket PATH`) or stdin (`--stdin`); the wire
/// protocol is documented in SERVING.md. `--workers 1` (the default) is
/// the deterministic mode: same request stream, same byte stream.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let num = |flag: &str, default: u64| -> Result<u64, String> {
        match flag_value(args, flag) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("{flag} expects a number, got `{s}`")),
        }
    };
    let cfg = kfuse_serve::ServeConfig {
        workers: num("--workers", 1)? as usize,
        queue_depth: num("--queue-depth", 64)?.max(1) as usize,
        cache_dir: flag_value(args, "--cache-dir").map(std::path::PathBuf::from),
        gpu: flag_value(args, "--gpu").unwrap_or_else(|| "k20x".into()),
        seed: num("--seed", 17)?,
        retry_after_ms: num("--retry-after-ms", 50)?,
    };
    if GpuSpec::by_name(&cfg.gpu).is_none() {
        return Err(format!("unknown gpu `{}`", cfg.gpu));
    }
    let socket = flag_value(args, "--socket");
    let use_stdin = args.iter().any(|a| a == "--stdin");
    match (socket, use_stdin) {
        (Some(path), false) => kfuse_serve::serve_unix(cfg, std::path::Path::new(&path))
            .map_err(|e| format!("serve on {path}: {e}")),
        (None, true) => kfuse_serve::serve_stdin(cfg).map_err(|e| format!("serve on stdin: {e}")),
        (Some(_), true) => Err("choose one of --socket and --stdin".into()),
        (None, false) => Err("serve needs --socket PATH or --stdin".into()),
    }
}
