//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides exactly the API surface this workspace uses: [`rngs::SmallRng`]
//! (xoshiro256++ seeded via SplitMix64), the [`Rng`] / [`SeedableRng`] /
//! [`RngCore`] traits with `gen_range` / `gen_bool` / `gen`, and
//! [`seq::SliceRandom`] with `choose` / `choose_multiple` / `shuffle`.
//!
//! Streams are deterministic per seed but do **not** match upstream
//! `rand 0.8` bit-for-bit — all determinism contracts in this repo are
//! self-relative (same seed ⇒ same run under this implementation).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used for seed expansion.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types a uniform sample can be drawn from (the `rand` range sugar).
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics on an empty range, like `rand`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Values `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one value from the standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` (clamped to [0, 1]).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::sample(self) < p
    }

    /// Draw from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// Small fast non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro forbids the all-zero state; SplitMix64 cannot
            // produce it from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Random selection / shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements (fewer if the slice is shorter),
        /// in selection order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            let mut picked = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
                picked.push(&self[idx[i]]);
            }
            picked.into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub use rngs::SmallRng as DefaultSmallRng;

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = SmallRng::seed_from_u64(3);
        let v: Vec<usize> = (0..20).collect();
        let picked: Vec<&usize> = v.choose_multiple(&mut rng, 8).collect();
        assert_eq!(picked.len(), 8);
        let mut uniq: Vec<usize> = picked.iter().map(|&&x| x).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }
}
