//! Offline stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! The data model ([`Value`], [`Map`], [`Number`]) lives in the vendored
//! `serde` crate (avoiding a circular dependency); this crate adds the
//! JSON text layer: [`to_string`], [`to_string_pretty`], [`to_vec`],
//! [`from_str`], [`from_slice`], [`to_value`], [`from_value`].
//!
//! The parser is a plain recursive-descent JSON reader; the printer emits
//! shortest-roundtrip floats (Rust's `{}` formatting) so `f64` values
//! survive a text round trip exactly.

pub use serde::{Map, Number, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    Ok(value.serialize_value()?)
}

/// Deserialize a `T` out of a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    Ok(T::deserialize_value(value)?)
}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&to_value(value)?, &mut out, None, 0);
    Ok(out)
}

/// Serialize to human-indented JSON text (two spaces, like `serde_json`).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&to_value(value)?, &mut out, Some("  "), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: serde::Serialize>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Parse JSON text into a `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    from_value(v)
}

/// Parse JSON bytes (must be UTF-8) into a `T`.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Printer.
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_json_string()),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            m.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject them loudly.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("unsupported \\u surrogate"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi \"x\"\n").unwrap(), r#""hi \"x\"\n""#);
        assert_eq!(from_str::<String>(r#""hi \"x\"\n""#).unwrap(), "hi \"x\"\n");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [0.1f64, 1.0 / 3.0, 2.5e-9, 1.7976931348623157e308, -0.0, 3.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} via {s}");
        }
    }

    #[test]
    fn u64_fidelity() {
        let v = u64::MAX;
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), v);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);

        let o: Option<u32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("5").unwrap(), Some(5));
    }

    #[test]
    fn value_tree_access() {
        let v: Value = from_str(r#"{"a": [1, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1]["b"].as_str(), Some("c"));
        assert!(v["d"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_print_shape() {
        let v: Value = from_str(r#"{"a":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn int_keyed_map_roundtrips() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<u32, String> = BTreeMap::new();
        m.insert(7, "x".into());
        m.insert(2, "y".into());
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"2":"y","7":"x"}"#);
        assert_eq!(from_str::<BTreeMap<u32, String>>(&s).unwrap(), m);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("xyz").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<bool>("7").is_err());
    }
}
