//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Real serde is format-agnostic via the `Serializer` / `Deserializer`
//! visitor machinery; the only format this workspace uses is JSON, so
//! this stand-in collapses the data model to one tree type, [`Value`]:
//!
//! - [`Serialize`] turns a value into a [`Value`];
//! - [`Deserialize`] rebuilds a value from a [`Value`];
//! - `vendor/serde_json` adds the JSON text layer on top and re-exports
//!   [`Value`] / [`Map`] / [`Number`].
//!
//! The derive macros (from `vendor/serde_derive`) generate impls with the
//! same JSON shapes upstream serde produces: structs → objects, newtype
//! structs → their inner value, unit enum variants → strings, data-carrying
//! variants → single-key objects (externally tagged), maps with integer
//! keys → objects with stringified keys, and `#[serde(default)]` fields
//! tolerate missing keys.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Map, Number, Value};

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert `self` into the JSON data model.
pub trait Serialize {
    /// Serialize into a [`Value`] tree.
    fn serialize_value(&self) -> Result<Value, Error>;
}

/// Rebuild `Self` from the JSON data model.
pub trait Deserialize: Sized {
    /// Deserialize from a [`Value`] tree (consumed).
    fn deserialize_value(v: Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Result<Value, Error> {
                Ok(Value::Number(Number::from_u64(*self as u64)))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Result<Value, Error> {
                Ok(Value::Number(Number::from_i64(*self as i64)))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Result<Value, Error> {
        // Like serde_json: non-finite floats have no JSON representation
        // and serialize as null.
        Ok(if self.is_finite() {
            Value::Number(Number::from_f64(*self))
        } else {
            Value::Null
        })
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Result<Value, Error> {
        (*self as f64).serialize_value()
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: Value) -> Result<Self, Error> {
        Ok(f64::deserialize_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::Bool(*self))
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::String(self.clone()))
    }
}

impl Deserialize for String {
    fn deserialize_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::String(self.to_owned()))
    }
}

/// `&'static str` deserialization leaks the string; it exists only so
/// `#[derive(Deserialize)]` compiles on report-row types that are in
/// practice only ever serialized.
impl Deserialize for &'static str {
    fn deserialize_value(v: Value) -> Result<Self, Error> {
        Ok(Box::leak(String::deserialize_value(v)?.into_boxed_str()))
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::String(self.to_string()))
    }
}

impl Deserialize for char {
    fn deserialize_value(v: Value) -> Result<Self, Error> {
        let s = String::deserialize_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Result<Value, Error> {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Result<Value, Error> {
        self.as_slice().serialize_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::Array(
            self.iter()
                .map(Serialize::serialize_value)
                .collect::<Result<_, _>>()?,
        ))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.into_iter().map(T::deserialize_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Result<Value, Error> {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Result<Value, Error> {
        match self {
            Some(t) => t.serialize_value(),
            None => Ok(Value::Null),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Result<Value, Error> {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: Value) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize_value(v)?))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::Array(vec![
            self.0.serialize_value()?,
            self.1.serialize_value()?,
        ]))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                Ok((
                    A::deserialize_value(it.next().expect("len checked"))?,
                    B::deserialize_value(it.next().expect("len checked"))?,
                ))
            }
            other => Err(Error::msg(format!(
                "expected 2-element array, got {other:?}"
            ))),
        }
    }
}

/// Serialize a map key: JSON object keys are strings, so numbers and
/// strings are stringified (matching `serde_json`'s integer-key support).
fn key_to_string<K: Serialize>(k: &K) -> Result<String, Error> {
    match k.serialize_value()? {
        Value::String(s) => Ok(s),
        Value::Number(n) => Ok(n.to_json_string()),
        other => Err(Error::msg(format!("unsupported map key {other:?}"))),
    }
}

/// Parse a map key back: numeric-looking keys become numbers first.
fn key_from_string<K: Deserialize>(s: String) -> Result<K, Error> {
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize_value(Value::Number(Number::from_u64(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize_value(Value::Number(Number::from_i64(i))) {
            return Ok(k);
        }
    }
    K::deserialize_value(Value::String(s))
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Result<Value, Error> {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(key_to_string(k)?, v.serialize_value()?);
        }
        Ok(Value::Object(m))
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .into_iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_value(&self) -> Result<Value, Error> {
        // Sort keys for deterministic output (HashMap order is random).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| Ok((key_to_string(k)?, v.serialize_value()?)))
            .collect::<Result<_, Error>>()?;
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k, v);
        }
        Ok(Value::Object(m))
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn deserialize_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .into_iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(self.clone())
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: Value) -> Result<Self, Error> {
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// Support functions used by the derive-generated code.
// ---------------------------------------------------------------------------

/// Derive-macro runtime support; not part of the public serde API.
pub mod __private {
    use super::{Deserialize, Error, Map, Value};

    /// Take and deserialize required field `name` from `m`.
    pub fn from_field<T: Deserialize>(m: &mut Map, name: &str) -> Result<T, Error> {
        let v = m
            .remove(name)
            .ok_or_else(|| Error::msg(format!("missing field `{name}`")))?;
        T::deserialize_value(v).map_err(|e| Error::msg(format!("field `{name}`: {e}")))
    }

    /// Take and deserialize field `name`, falling back to `Default` when
    /// the key is absent (`#[serde(default)]`).
    pub fn from_field_or_default<T: Deserialize + Default>(
        m: &mut Map,
        name: &str,
    ) -> Result<T, Error> {
        match m.remove(name) {
            Some(v) => {
                T::deserialize_value(v).map_err(|e| Error::msg(format!("field `{name}`: {e}")))
            }
            None => Ok(T::default()),
        }
    }

    /// Expect `v` to be an object and hand back its map.
    pub fn expect_object(v: Value, what: &str) -> Result<Map, Error> {
        match v {
            Value::Object(m) => Ok(m),
            other => Err(Error::msg(format!(
                "expected object for {what}, got {other:?}"
            ))),
        }
    }

    /// Expect `v` to be an array of exactly `n` elements.
    pub fn expect_tuple(v: Value, n: usize, what: &str) -> Result<Vec<Value>, Error> {
        match v {
            Value::Array(items) if items.len() == n => Ok(items),
            other => Err(Error::msg(format!(
                "expected {n}-element array for {what}, got {other:?}"
            ))),
        }
    }

    /// Externally-tagged enum payload: `{ "Variant": inner }`.
    pub fn variant_object(name: &str, inner: Value) -> Value {
        let mut m = Map::new();
        m.insert(name.to_owned(), inner);
        Value::Object(m)
    }

    /// Split a single-key object into `(variant_name, payload)`.
    pub fn take_variant(v: Value, what: &str) -> Result<(String, Value), Error> {
        match v {
            Value::String(s) => Ok((s, Value::Null)),
            Value::Object(m) if m.len() == 1 => {
                Ok(m.into_iter().next().expect("len checked above"))
            }
            other => Err(Error::msg(format!(
                "expected variant string or single-key object for {what}, got {other:?}"
            ))),
        }
    }
}
