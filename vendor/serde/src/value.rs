//! The JSON data model: [`Value`], [`Map`], [`Number`].
//!
//! `vendor/serde_json` re-exports these and adds text parsing/printing.

/// A JSON number. Like `serde_json`, integers keep full 64-bit fidelity
/// instead of being forced through `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point (always finite).
    Float(f64),
}

impl Number {
    /// From an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Number::PosInt(v)
    }

    /// From a signed integer.
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number::PosInt(v as u64)
        } else {
            Number::NegInt(v)
        }
    }

    /// From a float (caller guarantees finiteness; non-finite floats are
    /// mapped to null at the `Serialize` layer).
    pub fn from_f64(v: f64) -> Self {
        Number::Float(v)
    }

    /// As `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// As `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }

    /// As `f64` (lossy for huge integers, like `serde_json`).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(f) => f,
        }
    }

    /// Shortest-roundtrip JSON text for this number.
    pub fn to_json_string(&self) -> String {
        match *self {
            Number::PosInt(v) => v.to_string(),
            Number::NegInt(v) => v.to_string(),
            Number::Float(f) => {
                // Rust's `{}` for f64 is shortest-roundtrip; force a
                // decimal point so the value re-parses as a float.
                let s = format!("{f}");
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    s
                } else {
                    format!("{s}.0")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map (the representation of a JSON
/// object). Lookups are linear — objects in this workspace are structs
/// with a handful of fields.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert (replacing any existing entry for the key); returns the
    /// previous value if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Remove an entry by key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Borrow a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutably borrow a value by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map<String, Value>),
}

impl Value {
    /// Borrow as object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutably borrow as object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutably borrow as array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As `u64` if this is a representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64` if this is a representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `f64` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// True if `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object-field access (`v.get("k")`), mirroring `serde_json`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Panic-free object indexing: missing keys (and non-objects) yield
    /// `Null`, mirroring `serde_json`.
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}
