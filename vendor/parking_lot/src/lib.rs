//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock is recovered into its inner guard — the
//! protected data is a plain memo/cache in this workspace, so a panicking
//! writer cannot leave it logically corrupt.

use std::sync::{self, LockResult};

/// Non-poisoning reader-writer lock with `parking_lot`'s signatures.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

fn recover<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.0.read())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.0.write())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

/// Non-poisoning mutex with `parking_lot`'s signatures.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// Exclusive mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.0.lock())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
