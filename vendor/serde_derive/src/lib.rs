//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Generates impls of the vendored serde's `Serialize` / `Deserialize`
//! traits (a `Value`-tree data model, not upstream's visitor machinery).
//! Parsing is hand-rolled over `proc_macro::TokenStream` — `syn`/`quote`
//! are unavailable offline. Supported item shapes (everything this
//! workspace derives on):
//!
//! - structs with named fields, honoring `#[serde(default)]`;
//! - tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! - enums with unit, newtype, tuple, and struct variants (externally
//!   tagged, like upstream serde's default).
//!
//! Generic parameters and other `#[serde(...)]` attributes are rejected
//! with a compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    has_default: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// The parsed derive input.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

/// Skip one attribute (`# [ ... ]`) if present; returns whether the
/// attribute was `#[serde(...)]` containing exactly `default`.
/// Errors (as `Err(msg)`) on unsupported serde attributes.
fn skip_attr(tokens: &[TokenTree], pos: &mut usize) -> Result<Option<bool>, String> {
    if let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() == '#' {
            let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) else {
                return Err("expected [...] after #".into());
            };
            *pos += 2;
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    let Some(TokenTree::Group(args)) = inner.get(1) else {
                        return Err("expected serde(...) arguments".into());
                    };
                    let mut has_default = false;
                    for t in args.stream() {
                        match &t {
                            TokenTree::Ident(i) if i.to_string() == "default" => {
                                has_default = true;
                            }
                            TokenTree::Punct(p) if p.as_char() == ',' => {}
                            other => {
                                return Err(format!(
                                    "unsupported serde attribute content `{other}` \
                                     (vendored serde_derive supports only #[serde(default)])"
                                ));
                            }
                        }
                    }
                    return Ok(Some(has_default));
                }
            }
            return Ok(Some(false));
        }
    }
    Ok(None)
}

/// Skip all attributes; returns true if any was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> Result<bool, String> {
    let mut has_default = false;
    while let Some(flag) = skip_attr(tokens, pos)? {
        has_default |= flag;
    }
    Ok(has_default)
}

/// Skip `pub`, `pub(crate)`, `pub(super)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Consume tokens of a type (or expression) until a depth-0 comma,
/// tracking `<`/`>` nesting. Leaves `pos` on the comma (or at end).
fn skip_until_top_level_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Parse `name: Type` fields from the token list of a brace group.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let has_default = skip_attrs(tokens, &mut pos)?;
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(tokens, &mut pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            return Err(format!(
                "expected field name, got `{:?}`",
                tokens.get(pos).map(|t| t.to_string())
            ));
        };
        let name = name.to_string();
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, got `{:?}`",
                    other.map(|t| t.to_string())
                ))
            }
        }
        skip_until_top_level_comma(tokens, &mut pos);
        pos += 1; // over the comma (or past end)
        fields.push(Field { name, has_default });
    }
    Ok(fields)
}

/// Count the fields of a tuple struct / tuple variant from the token list
/// of a paren group.
fn count_tuple_fields(tokens: &[TokenTree]) -> Result<usize, String> {
    let mut arity = 0usize;
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(tokens, &mut pos)?;
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        arity += 1;
        skip_until_top_level_comma(tokens, &mut pos);
        pos += 1;
    }
    Ok(arity)
}

/// Parse the variants of an enum from the token list of its brace group.
fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(tokens, &mut pos)?;
        if pos >= tokens.len() {
            break;
        }
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            return Err(format!(
                "expected variant name, got `{:?}`",
                tokens.get(pos).map(|t| t.to_string())
            ));
        };
        let name = name.to_string();
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                VariantKind::Struct(parse_named_fields(&inner)?)
            }
            _ => VariantKind::Unit,
        };
        // Skip any discriminant (`= expr`) up to the next depth-0 comma.
        skip_until_top_level_comma(tokens, &mut pos);
        pos += 1;
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

/// Parse the whole derive input item.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs(&tokens, &mut pos)?;
    skip_visibility(&tokens, &mut pos);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "expected `struct` or `enum`, got `{:?}`",
                other.map(|t| t.to_string())
            ))
        }
    };
    pos += 1;
    let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
        return Err("expected item name".into());
    };
    let name = name.to_string();
    pos += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(&inner)?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(&inner)?,
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!(
                "unsupported struct body `{:?}`",
                other.map(|t| t.to_string())
            )),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::Enum {
                    name,
                    variants: parse_variants(&inner)?,
                })
            }
            _ => Err("expected enum body".into()),
        },
        other => Err(format!("cannot derive on `{other}` items")),
    }
}

// ---------------------------------------------------------------------------
// Code generation (string-built, then parsed into a TokenStream).
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "m.insert({n:?}.to_owned(), ::serde::Serialize::serialize_value(&self.{n})?);\n",
                    n = f.name
                ));
            }
            body.push_str("::core::result::Result::Ok(::serde::Value::Object(m))");
            out.push_str(&impl_serialize(name, &body));
        }
        Item::TupleStruct { name, arity: 1 } => {
            out.push_str(&impl_serialize(
                name,
                "::serde::Serialize::serialize_value(&self.0)",
            ));
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})?"))
                .collect();
            out.push_str(&impl_serialize(
                name,
                &format!(
                    "::core::result::Result::Ok(::serde::Value::Array(vec![{}]))",
                    items.join(", ")
                ),
            ));
        }
        Item::UnitStruct { name } => {
            out.push_str(&impl_serialize(
                name,
                "::core::result::Result::Ok(::serde::Value::Null)",
            ));
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::core::result::Result::Ok(\
                         ::serde::Value::String({vn:?}.to_owned())),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::core::result::Result::Ok(\
                         ::serde::__private::variant_object({vn:?}, \
                         ::serde::Serialize::serialize_value(__f0)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let sers: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})?"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::core::result::Result::Ok(\
                             ::serde::__private::variant_object({vn:?}, \
                             ::serde::Value::Array(vec![{}]))),\n",
                            binds.join(", "),
                            sers.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from("let mut m = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "m.insert({n:?}.to_owned(), \
                                 ::serde::Serialize::serialize_value({n})?);\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {inner} \
                             ::core::result::Result::Ok(\
                             ::serde::__private::variant_object({vn:?}, \
                             ::serde::Value::Object(m))) }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            out.push_str(&impl_serialize(name, &format!("match self {{\n{arms}}}")));
        }
    }
    out
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::core::result::Result<::serde::Value, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let helper = if f.has_default {
                    "from_field_or_default"
                } else {
                    "from_field"
                };
                inits.push_str(&format!(
                    "{n}: ::serde::__private::{helper}(&mut m, {n:?})?,\n",
                    n = f.name
                ));
            }
            impl_deserialize(
                name,
                &format!(
                    "let mut m = ::serde::__private::expect_object(v, {name:?})?;\n\
                     ::core::result::Result::Ok({name} {{\n{inits}}})"
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => impl_deserialize(
            name,
            &format!(
                "::core::result::Result::Ok({name}(\
                 ::serde::Deserialize::deserialize_value(v)?))"
            ),
        ),
        Item::TupleStruct { name, arity } => {
            let gets: Vec<String> = (0..*arity)
                .map(|_| {
                    "::serde::Deserialize::deserialize_value(\
                     __it.next().expect(\"length checked\"))?"
                        .to_owned()
                })
                .collect();
            impl_deserialize(
                name,
                &format!(
                    "let mut __it = ::serde::__private::expect_tuple(v, {arity}, {name:?})?\
                     .into_iter();\n\
                     ::core::result::Result::Ok({name}({}))",
                    gets.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => impl_deserialize(
            name,
            &format!("let _ = v; ::core::result::Result::Ok({name})"),
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{vn:?} => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{vn:?} => ::core::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|_| {
                                "::serde::Deserialize::deserialize_value(\
                                 __it.next().expect(\"length checked\"))?"
                                    .to_owned()
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{vn:?} => {{ let mut __it = ::serde::__private::expect_tuple(\
                             __payload, {n}, \"{name}::{vn}\")?.into_iter();\n\
                             ::core::result::Result::Ok({name}::{vn}({})) }}\n",
                            gets.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let helper = if f.has_default {
                                "from_field_or_default"
                            } else {
                                "from_field"
                            };
                            inits.push_str(&format!(
                                "{n}: ::serde::__private::{helper}(&mut m, {n:?})?,\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{vn:?} => {{ let mut m = ::serde::__private::expect_object(\
                             __payload, \"{name}::{vn}\")?;\n\
                             ::core::result::Result::Ok({name}::{vn} {{\n{inits}}}) }}\n"
                        ));
                    }
                }
            }
            impl_deserialize(
                name,
                &format!(
                    "let (__tag, __payload) = ::serde::__private::take_variant(v, {name:?})?;\n\
                     let _ = &__payload;\n\
                     match __tag.as_str() {{\n{arms}\
                     other => ::core::result::Result::Err(::serde::Error::msg(\
                     format!(\"unknown variant `{{other}}` for {name}\"))),\n}}"
                ),
            )
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: ::serde::Value) -> \
         ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

/// Derive the vendored serde's `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

/// Derive the vendored serde's `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}
