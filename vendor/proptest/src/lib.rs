//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(N))]` header, argument
//! strategies of the form `name in <integer range>`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` assertions.
//!
//! Differences from upstream, by design:
//! - Sampling is **deterministic**: the per-test RNG is seeded from the
//!   test's module path and name, so every run explores the same cases.
//!   There is no failure persistence file because there is no
//!   run-to-run variation to persist.
//! - There is **no shrinking**. A failing case panics immediately with
//!   the case number; the deterministic seeding makes the failure
//!   reproducible by just re-running the test.

use std::ops::{Range, RangeInclusive};

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to execute per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic splitmix64 stream used to sample strategy values.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the stream from the fully qualified test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, mixed with a fixed tag so renaming a
        // test is the only way its case sequence changes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A value generator. Only what the workspace needs: integer ranges.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Per-test driver holding the configuration and RNG stream.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    current_case: u32,
}

impl TestRunner {
    /// Build a runner for the named test.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let rng = TestRng::from_name(name);
        TestRunner {
            config,
            rng,
            current_case: 0,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Record entry into case `i` (reported on failure).
    pub fn start_case(&mut self, i: u32) {
        self.current_case = i;
    }

    /// Access the sampling stream.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// Commonly used re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("proptest case failed: {}", format!($($fmt)*));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Define property tests. Each function runs `cases` times with
/// arguments freshly sampled from its strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..runner.cases() {
                    runner.start_case(case);
                    $(let $arg = $crate::Strategy::sample(&($strat), runner.rng());)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x::t");
        let mut b = TestRng::from_name("x::t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("x::other");
        let _ = c.next_u64();
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (4usize..=9).sample(&mut rng);
            assert!((4..=9).contains(&w));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself works end to end.
        #[test]
        fn macro_smoke(a in 0u64..100, b in 1usize..5) {
            prop_assert!(a < 100);
            prop_assert_eq!(b * 2 / 2, b);
            prop_assert_ne!(b, 0);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(a in 0u32..10) {
            prop_assert!(a < 10);
        }
    }
}
