//! Offline stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses with plain `std::thread`
//! scoped fork/join instead of a work-stealing pool:
//!
//! - `vec.into_par_iter().map(f).collect()` / `slice.par_iter().map(f)`
//!   — eager, order-preserving, contiguous-chunk parallel map;
//! - [`scope`] with `Scope::spawn` — jobs collected during the scope
//!   closure, then run to completion on scoped threads (all jobs joined
//!   before `scope` returns). Unlike upstream rayon, `spawn` takes a
//!   plain `FnOnce()` (no re-entrant `&Scope` argument) and jobs start
//!   only after the scope closure finishes building the job list;
//! - [`ThreadPoolBuilder`]`::num_threads(n).build()` +
//!   `ThreadPool::install` — bounds the worker count for closures run
//!   under `install` (a process-global override, which is all the
//!   benches need);
//! - [`current_num_threads`] — override, else `RAYON_NUM_THREADS`, else
//!   `std::thread::available_parallelism()`.
//!
//! Parallel results are position-stable, so anything deterministic under
//! upstream rayon's `collect` stays deterministic here.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-global worker-count override (0 = none). Set by
/// [`ThreadPool::install`] for the duration of the installed closure.
static OVERRIDE_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    let o = OVERRIDE_THREADS.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Order-preserving parallel map over an owned vector: contiguous chunks,
/// one scoped thread per chunk.
fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Split into `threads` contiguous chunks (sizes differ by ≤ 1).
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let base = len / threads;
    let extra = len % threads;
    let mut it = items.into_iter();
    for i in 0..threads {
        let take = base + usize::from(i < extra);
        chunks.push(it.by_ref().take(take).collect());
    }

    let f = &f;
    let mut out: Vec<R> = Vec::with_capacity(len);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("rayon stand-in worker panicked"));
        }
    });
    out
}

/// An eager "parallel iterator": combinators apply in parallel
/// immediately; terminal ops just hand the buffer over.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map (runs eagerly, preserves order).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_map_vec(self.items, f),
        }
    }

    /// Parallel for-each (runs eagerly).
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map_vec(self.items, f);
    }

    /// Collect the (already computed) results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum the (already computed) results.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

/// Conversion into an owned parallel iterator (`rayon` naming).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Build the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `.par_iter()` on borrowed collections (`rayon` naming).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;
    /// Build a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude::*`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Fork/join scope: jobs spawned during the closure run on scoped threads
/// and are all joined before [`scope`] returns.
pub struct Scope<'env> {
    jobs: std::sync::Mutex<Vec<Box<dyn FnOnce() + Send + 'env>>>,
}

impl<'env> Scope<'env> {
    /// Queue `f` to run on a worker thread once the scope closure returns.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        self.jobs
            .lock()
            .expect("rayon stand-in scope poisoned")
            .push(Box::new(f));
    }
}

/// Run `op`, then execute every job it spawned in parallel (bounded by
/// [`current_num_threads`]); returns after all jobs complete.
pub fn scope<'env, R>(op: impl FnOnce(&Scope<'env>) -> R) -> R {
    let sc = Scope {
        jobs: std::sync::Mutex::new(Vec::new()),
    };
    let result = op(&sc);
    let jobs = sc.jobs.into_inner().expect("rayon stand-in scope poisoned");
    if jobs.is_empty() {
        return result;
    }
    let threads = current_num_threads().min(jobs.len());
    if threads <= 1 {
        for j in jobs {
            j();
        }
        return result;
    }
    // Contiguous round-robin batches so job count may exceed threads.
    let mut batches: Vec<Vec<Box<dyn FnOnce() + Send + 'env>>> =
        (0..threads).map(|_| Vec::new()).collect();
    for (i, j) in jobs.into_iter().enumerate() {
        batches[i % threads].push(j);
    }
    std::thread::scope(|s| {
        for batch in batches {
            s.spawn(move || {
                for j in batch {
                    j();
                }
            });
        }
    });
    result
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type of [`ThreadPoolBuilder::build`] (infallible here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound the worker count (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: match self.num_threads {
                Some(n) if n > 0 => n,
                _ => current_num_threads(),
            },
        })
    }
}

/// A "pool": in this stand-in, a worker-count bound applied for the
/// duration of [`ThreadPool::install`].
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's worker count as the process-global bound.
    ///
    /// The override is global, not thread-local: concurrent `install`s
    /// from different threads would race. The benches (its only callers
    /// here) run installs sequentially.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = OVERRIDE_THREADS.swap(self.num_threads, Ordering::SeqCst);
        let r = f();
        OVERRIDE_THREADS.store(prev, Ordering::SeqCst);
        r
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_on_slice() {
        let v: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn scope_joins_all_jobs() {
        let counter = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..32 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn scope_allows_disjoint_mut_borrows() {
        let mut slots = vec![0u64; 8];
        scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u64 + 1);
            }
        });
        assert_eq!(slots, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn install_bounds_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let n = pool.install(current_num_threads);
        assert_eq!(n, 2);
    }
}
