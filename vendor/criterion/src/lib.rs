//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the API subset this workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a plain
//! wall-clock measurement loop instead of criterion's statistical
//! machinery: a short warm-up, then `sample_size` timed samples, then a
//! median/mean/min report to stdout. Good enough to compare orders of
//! magnitude and spot regressions by eye; not a statistics engine.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target number of timed samples per benchmark (default 10; criterion's
/// default of 100 is far too slow without its adaptive plumbing).
const DEFAULT_SAMPLE_SIZE: usize = 10;
/// Soft cap on total measurement time per benchmark.
const MAX_MEASURE_TIME: Duration = Duration::from_secs(3);

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Parse CLI arguments (accepted and ignored in this stand-in: cargo
    /// passes `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n── group: {name} ──");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; the stand-in keeps its fixed
    /// soft time cap.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_bench(&label, self.sample_size, f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// End the group (report formatting hook in real criterion).
    pub fn finish(self) {}
}

/// A benchmark identifier (`name/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier from a function name plus a parameter value.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// Identifier from a parameter value only.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] (so plain `&str` labels work too).
pub trait IntoBenchmarkId {
    /// Convert.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Setup-cost hint for [`Bencher::iter_batched`] (ignored here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small setup output.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// Re-setup per iteration.
    PerIteration,
}

/// Passed to benchmark closures; runs the measurement loop.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up (also calibrates iterations per sample).
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed();
        let per_sample = MAX_MEASURE_TIME
            .checked_div(self.sample_size as u32)
            .unwrap_or_default();
        let iters = if once.is_zero() {
            1000
        } else {
            (per_sample.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as usize
        };

        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters as u32);
            if budget.elapsed() > MAX_MEASURE_TIME {
                break;
            }
        }
    }

    /// Measure `routine` on fresh values from `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<S, R, FS: FnMut() -> S, FR: FnMut(S) -> R>(
        &mut self,
        mut setup: FS,
        mut routine: FR,
        _size: BatchSize,
    ) {
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if budget.elapsed() > MAX_MEASURE_TIME {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{label:<48} median {} · mean {} · min {} · {} samples",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
        b.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t2");
        g.sample_size(2);
        g.bench_function(BenchmarkId::new("sum", 8), |b| {
            b.iter_batched(
                || (0..100u64).collect::<Vec<_>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
